#include "exec/reference_executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "expr/eval.h"

namespace qtf {
namespace {

struct RowHash {
  size_t operator()(const Row& row) const { return HashRow(row); }
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    return CompareRows(a, b) == 0;
  }
};

/// Accumulator for one aggregate over one group.
class AggAccumulator {
 public:
  explicit AggAccumulator(const AggregateCall& call) : call_(&call) {}

  Status Add(const ColumnBindings& bindings, const Row& row) {
    if (call_->kind == AggKind::kCountStar) {
      ++count_;
      return Status::OK();
    }
    QTF_ASSIGN_OR_RETURN(Value v, Eval(*call_->arg, bindings, row));
    if (v.is_null()) return Status::OK();  // aggregates skip NULLs
    ++count_;
    switch (call_->kind) {
      case AggKind::kCountStar:
      case AggKind::kCount:
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        if (v.type() == ValueType::kInt64) {
          sum_int_ += v.int64();
        } else {
          sum_double_ += v.AsDouble();
        }
        break;
      case AggKind::kMin:
        if (!has_extreme_ || v.Compare(extreme_) < 0) extreme_ = v;
        has_extreme_ = true;
        break;
      case AggKind::kMax:
        if (!has_extreme_ || v.Compare(extreme_) > 0) extreme_ = v;
        has_extreme_ = true;
        break;
    }
    return Status::OK();
  }

  Value Finish() const {
    ValueType result_type = call_->ResultType();
    switch (call_->kind) {
      case AggKind::kCountStar:
      case AggKind::kCount:
        return Value::Int64(count_);
      case AggKind::kSum:
        if (count_ == 0) return Value::Null(result_type);
        if (result_type == ValueType::kInt64) return Value::Int64(sum_int_);
        return Value::Double(sum_double_ + static_cast<double>(sum_int_));
      case AggKind::kAvg: {
        if (count_ == 0) return Value::Null(ValueType::kDouble);
        double total = sum_double_ + static_cast<double>(sum_int_);
        return Value::Double(total / static_cast<double>(count_));
      }
      case AggKind::kMin:
      case AggKind::kMax:
        if (!has_extreme_) return Value::Null(result_type);
        return extreme_;
    }
    return Value::Null(result_type);
  }

 private:
  const AggregateCall* call_;
  int64_t count_ = 0;
  int64_t sum_int_ = 0;
  double sum_double_ = 0.0;
  bool has_extreme_ = false;
  Value extreme_;
};

/// Shared aggregation core: `groups` maps group-key rows to the source rows
/// of that group; emits one output row per group.
Result<std::vector<Row>> FinishGroups(
    const std::vector<ColumnId>& group_cols,
    const std::vector<AggregateItem>& aggregates,
    const ColumnBindings& bindings,
    const std::vector<std::pair<Row, std::vector<const Row*>>>& groups) {
  std::vector<Row> out;
  out.reserve(groups.size());
  for (const auto& [key, members] : groups) {
    std::vector<AggAccumulator> accs;
    accs.reserve(aggregates.size());
    for (const AggregateItem& item : aggregates) {
      accs.emplace_back(item.call);
    }
    for (const Row* row : members) {
      for (AggAccumulator& acc : accs) {
        QTF_RETURN_NOT_OK(acc.Add(bindings, *row));
      }
    }
    Row result_row;
    result_row.reserve(group_cols.size() + aggregates.size());
    for (const Value& v : key) result_row.push_back(v);
    for (const AggAccumulator& acc : accs) result_row.push_back(acc.Finish());
    out.push_back(std::move(result_row));
  }
  return out;
}

}  // namespace

Result<ResultSet> ReferenceExecutor::Execute(const PhysicalOp& plan) {
  // Restart node numbering so the fault keys of a plan depend only on
  // (salt, plan shape), not on how many plans this executor ran before.
  node_seq_ = 0;
  QTF_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecuteNode(plan));
  ResultSet result;
  result.columns = plan.OutputColumns();
  result.rows = std::move(rows);
  return result;
}

Result<std::vector<Row>> ReferenceExecutor::ExecuteNode(const PhysicalOp& op) {
  if (fault_injector_ != nullptr && fault_injector_->enabled()) {
    // One probe per operator materialization (the engine's "batch"): keyed
    // by the node's visit order, which is fixed by the plan shape, so a
    // given (salt, plan) faults identically on every run.
    QTF_RETURN_NOT_OK(fault_injector_->Probe(fault_sites::kExecutorNextBatch,
                                             fault_salt_ ^ node_seq_++));
  }
  switch (op.kind()) {
    case PhysicalOpKind::kTableScan: {
      const auto& scan = static_cast<const TableScanOp&>(op);
      QTF_ASSIGN_OR_RETURN(std::shared_ptr<const TableData> data,
                           db_->GetTableData(scan.table().name()));
      std::vector<Row> rows = data->rows();
      rows_produced_ += static_cast<int64_t>(rows.size());
      return rows;
    }

    case PhysicalOpKind::kFilter: {
      const auto& filter = static_cast<const FilterOp&>(op);
      QTF_ASSIGN_OR_RETURN(std::vector<Row> input, ExecuteNode(*op.child(0)));
      ColumnBindings bindings(op.child(0)->OutputColumns());
      std::vector<Row> out;
      for (Row& row : input) {
        QTF_ASSIGN_OR_RETURN(Value v, Eval(*filter.predicate(), bindings, row));
        if (IsTrue(v)) out.push_back(std::move(row));
      }
      rows_produced_ += static_cast<int64_t>(out.size());
      return out;
    }

    case PhysicalOpKind::kCompute: {
      const auto& compute = static_cast<const ComputeOp&>(op);
      QTF_ASSIGN_OR_RETURN(std::vector<Row> input, ExecuteNode(*op.child(0)));
      ColumnBindings bindings(op.child(0)->OutputColumns());
      std::vector<Row> out;
      out.reserve(input.size());
      for (const Row& row : input) {
        Row result_row;
        result_row.reserve(compute.items().size());
        for (const ProjectItem& item : compute.items()) {
          QTF_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, bindings, row));
          result_row.push_back(std::move(v));
        }
        out.push_back(std::move(result_row));
      }
      rows_produced_ += static_cast<int64_t>(out.size());
      return out;
    }

    case PhysicalOpKind::kNlJoin: {
      const auto& join = static_cast<const NlJoinOp&>(op);
      QTF_ASSIGN_OR_RETURN(std::vector<Row> left, ExecuteNode(*op.child(0)));
      QTF_ASSIGN_OR_RETURN(std::vector<Row> right, ExecuteNode(*op.child(1)));
      std::vector<ColumnId> left_cols = op.child(0)->OutputColumns();
      std::vector<ColumnId> right_cols = op.child(1)->OutputColumns();
      std::vector<ColumnId> combined_cols = left_cols;
      combined_cols.insert(combined_cols.end(), right_cols.begin(),
                           right_cols.end());
      ColumnBindings bindings(combined_cols);

      std::vector<Row> out;
      for (const Row& lrow : left) {
        bool matched = false;
        for (const Row& rrow : right) {
          Row combined = lrow;
          combined.insert(combined.end(), rrow.begin(), rrow.end());
          bool pass = true;
          if (join.predicate() != nullptr) {
            QTF_ASSIGN_OR_RETURN(Value v,
                                 Eval(*join.predicate(), bindings, combined));
            pass = IsTrue(v);
          }
          if (!pass) continue;
          matched = true;
          switch (join.join_kind()) {
            case JoinKind::kInner:
            case JoinKind::kLeftOuter:
              out.push_back(std::move(combined));
              break;
            case JoinKind::kLeftSemi:
            case JoinKind::kLeftAnti:
              break;  // membership handled below
          }
          if (join.join_kind() == JoinKind::kLeftSemi ||
              join.join_kind() == JoinKind::kLeftAnti) {
            break;  // one match decides
          }
        }
        switch (join.join_kind()) {
          case JoinKind::kInner:
            break;
          case JoinKind::kLeftOuter:
            if (!matched) {
              Row combined = lrow;
              for (ColumnId id : right_cols) {
                combined.push_back(Value::Null(registry_->TypeOf(id)));
              }
              out.push_back(std::move(combined));
            }
            break;
          case JoinKind::kLeftSemi:
            if (matched) out.push_back(lrow);
            break;
          case JoinKind::kLeftAnti:
            if (!matched) out.push_back(lrow);
            break;
        }
      }
      rows_produced_ += static_cast<int64_t>(out.size());
      return out;
    }

    case PhysicalOpKind::kHashJoin: {
      const auto& join = static_cast<const HashJoinOp&>(op);
      QTF_ASSIGN_OR_RETURN(std::vector<Row> left, ExecuteNode(*op.child(0)));
      QTF_ASSIGN_OR_RETURN(std::vector<Row> right, ExecuteNode(*op.child(1)));
      std::vector<ColumnId> left_cols = op.child(0)->OutputColumns();
      std::vector<ColumnId> right_cols = op.child(1)->OutputColumns();
      ColumnBindings left_bind(left_cols);
      ColumnBindings right_bind(right_cols);
      std::vector<ColumnId> combined_cols = left_cols;
      combined_cols.insert(combined_cols.end(), right_cols.begin(),
                           right_cols.end());
      ColumnBindings combined_bind(combined_cols);

      // Build side: right input keyed by its equi columns. Rows with any
      // NULL key never participate (SQL equality).
      std::unordered_map<Row, std::vector<const Row*>, RowHash, RowEq> table;
      for (const Row& rrow : right) {
        Row key;
        bool has_null = false;
        for (const auto& [lcol, rcol] : join.equi_pairs()) {
          const Value& v = rrow[static_cast<size_t>(right_bind.PositionOf(rcol))];
          if (v.is_null()) {
            has_null = true;
            break;
          }
          key.push_back(v);
        }
        if (!has_null) table[std::move(key)].push_back(&rrow);
      }

      std::vector<Row> out;
      for (const Row& lrow : left) {
        Row key;
        bool has_null = false;
        for (const auto& [lcol, rcol] : join.equi_pairs()) {
          const Value& v = lrow[static_cast<size_t>(left_bind.PositionOf(lcol))];
          if (v.is_null()) {
            has_null = true;
            break;
          }
          key.push_back(v);
        }
        bool matched = false;
        if (!has_null) {
          auto it = table.find(key);
          if (it != table.end()) {
            for (const Row* rrow : it->second) {
              Row combined = lrow;
              combined.insert(combined.end(), rrow->begin(), rrow->end());
              bool pass = true;
              if (join.residual() != nullptr) {
                QTF_ASSIGN_OR_RETURN(
                    Value v, Eval(*join.residual(), combined_bind, combined));
                pass = IsTrue(v);
              }
              if (!pass) continue;
              matched = true;
              if (join.join_kind() == JoinKind::kInner ||
                  join.join_kind() == JoinKind::kLeftOuter) {
                out.push_back(std::move(combined));
              } else {
                break;  // semi/anti: one match decides
              }
            }
          }
        }
        switch (join.join_kind()) {
          case JoinKind::kInner:
            break;
          case JoinKind::kLeftOuter:
            if (!matched) {
              Row combined = lrow;
              for (ColumnId id : right_cols) {
                combined.push_back(Value::Null(registry_->TypeOf(id)));
              }
              out.push_back(std::move(combined));
            }
            break;
          case JoinKind::kLeftSemi:
            if (matched) out.push_back(lrow);
            break;
          case JoinKind::kLeftAnti:
            if (!matched) out.push_back(lrow);
            break;
        }
      }
      rows_produced_ += static_cast<int64_t>(out.size());
      return out;
    }

    case PhysicalOpKind::kHashAggregate: {
      const auto& agg = static_cast<const HashAggregateOp&>(op);
      QTF_ASSIGN_OR_RETURN(std::vector<Row> input, ExecuteNode(*op.child(0)));
      ColumnBindings bindings(op.child(0)->OutputColumns());

      // SQL GROUP BY puts all NULLs of a grouping column into one group,
      // which matches Row hashing/equality (NULL == NULL there).
      std::unordered_map<Row, std::vector<const Row*>, RowHash, RowEq> groups;
      std::vector<Row> group_order;  // deterministic output order
      for (const Row& row : input) {
        Row key;
        key.reserve(agg.group_cols().size());
        for (ColumnId id : agg.group_cols()) {
          key.push_back(row[static_cast<size_t>(bindings.PositionOf(id))]);
        }
        auto [it, inserted] = groups.try_emplace(key);
        if (inserted) group_order.push_back(key);
        it->second.push_back(&row);
      }
      std::vector<std::pair<Row, std::vector<const Row*>>> ordered;
      for (const Row& key : group_order) {
        ordered.emplace_back(key, groups[key]);
      }
      // Scalar aggregate over an empty input still produces one row.
      if (agg.group_cols().empty() && ordered.empty()) {
        ordered.emplace_back(Row{}, std::vector<const Row*>{});
      }
      QTF_ASSIGN_OR_RETURN(
          std::vector<Row> out,
          FinishGroups(agg.group_cols(), agg.aggregates(), bindings, ordered));
      rows_produced_ += static_cast<int64_t>(out.size());
      return out;
    }

    case PhysicalOpKind::kStreamAggregate: {
      const auto& agg = static_cast<const StreamAggregateOp&>(op);
      QTF_ASSIGN_OR_RETURN(std::vector<Row> input, ExecuteNode(*op.child(0)));
      ColumnBindings bindings(op.child(0)->OutputColumns());

      std::vector<std::pair<Row, std::vector<const Row*>>> ordered;
      for (const Row& row : input) {
        Row key;
        key.reserve(agg.group_cols().size());
        for (ColumnId id : agg.group_cols()) {
          key.push_back(row[static_cast<size_t>(bindings.PositionOf(id))]);
        }
        if (ordered.empty() || CompareRows(ordered.back().first, key) != 0) {
          ordered.emplace_back(std::move(key), std::vector<const Row*>{});
        }
        ordered.back().second.push_back(&row);
      }
      if (agg.group_cols().empty() && ordered.empty()) {
        ordered.emplace_back(Row{}, std::vector<const Row*>{});
      }
      QTF_ASSIGN_OR_RETURN(
          std::vector<Row> out,
          FinishGroups(agg.group_cols(), agg.aggregates(), bindings, ordered));
      rows_produced_ += static_cast<int64_t>(out.size());
      return out;
    }

    case PhysicalOpKind::kSort: {
      const auto& sort = static_cast<const SortOp&>(op);
      QTF_ASSIGN_OR_RETURN(std::vector<Row> input, ExecuteNode(*op.child(0)));
      ColumnBindings bindings(op.child(0)->OutputColumns());
      std::vector<int> positions;
      for (ColumnId id : sort.sort_cols()) {
        positions.push_back(bindings.PositionOf(id));
      }
      std::stable_sort(input.begin(), input.end(),
                       [&positions](const Row& a, const Row& b) {
                         for (int pos : positions) {
                           int c = a[static_cast<size_t>(pos)].Compare(
                               b[static_cast<size_t>(pos)]);
                           if (c != 0) return c < 0;
                         }
                         return false;
                       });
      rows_produced_ += static_cast<int64_t>(input.size());
      return input;
    }

    case PhysicalOpKind::kConcat: {
      const auto& concat = static_cast<const ConcatOp&>(op);
      QTF_ASSIGN_OR_RETURN(std::vector<Row> left, ExecuteNode(*op.child(0)));
      QTF_ASSIGN_OR_RETURN(std::vector<Row> right, ExecuteNode(*op.child(1)));
      // Each child may emit its columns in a different order than the
      // union branch they implement; remap by id so output position k
      // always carries left_cols[k] / right_cols[k].
      auto remap = [](std::vector<Row>* rows, const PhysicalOp& child,
                      const std::vector<ColumnId>& branch_cols) {
        ColumnBindings bindings(child.OutputColumns());
        std::vector<int> pos;
        bool identity = true;
        for (size_t k = 0; k < branch_cols.size(); ++k) {
          pos.push_back(bindings.PositionOf(branch_cols[k]));
          if (pos.back() != static_cast<int>(k)) identity = false;
        }
        if (identity) return;
        for (Row& row : *rows) {
          Row remapped;
          remapped.reserve(pos.size());
          for (int p : pos) remapped.push_back(row[static_cast<size_t>(p)]);
          row = std::move(remapped);
        }
      };
      remap(&left, *op.child(0), concat.left_cols());
      remap(&right, *op.child(1), concat.right_cols());
      left.insert(left.end(), std::make_move_iterator(right.begin()),
                  std::make_move_iterator(right.end()));
      rows_produced_ += static_cast<int64_t>(left.size());
      return left;
    }

    case PhysicalOpKind::kHashDistinct: {
      QTF_ASSIGN_OR_RETURN(std::vector<Row> input, ExecuteNode(*op.child(0)));
      std::unordered_set<Row, RowHash, RowEq> seen;
      std::vector<Row> out;
      for (Row& row : input) {
        if (seen.insert(row).second) out.push_back(std::move(row));
      }
      rows_produced_ += static_cast<int64_t>(out.size());
      return out;
    }
  }
  return Status::Internal("unknown physical operator");
}

}  // namespace qtf
