#include "exec/result_set.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace qtf {
namespace {

constexpr double kRelTolerance = 1e-9;
constexpr double kAbsTolerance = 1e-9;

bool DoubleClose(double a, double b) {
  double diff = std::fabs(a - b);
  if (diff <= kAbsTolerance) return true;
  return diff <= kRelTolerance * std::max(std::fabs(a), std::fabs(b));
}

/// Tolerant value equality (exact for non-doubles).
bool ValueClose(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  if (a.is_null() || b.is_null()) return a.is_null() == b.is_null();
  if (a.type() == ValueType::kDouble) return DoubleClose(a.dbl(), b.dbl());
  return a.Compare(b) == 0;
}

bool RowClose(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!ValueClose(a[i], b[i])) return false;
  }
  return true;
}

}  // namespace

bool ResultBagEquals(const ResultSet& a, const ResultSet& b) {
  if (a.columns != b.columns) return false;
  if (a.rows.size() != b.rows.size()) return false;
  std::vector<Row> sa = a.rows;
  std::vector<Row> sb = b.rows;
  auto less = [](const Row& x, const Row& y) { return CompareRows(x, y) < 0; };
  std::sort(sa.begin(), sa.end(), less);
  std::sort(sb.begin(), sb.end(), less);
  for (size_t i = 0; i < sa.size(); ++i) {
    if (!RowClose(sa[i], sb[i])) return false;
  }
  return true;
}

std::string ResultSetToString(const ResultSet& result, int max_rows) {
  std::string out;
  std::vector<std::string> header;
  for (ColumnId id : result.columns) header.push_back("c" + std::to_string(id));
  out += Join(header, " | ") + "\n";
  int shown = 0;
  for (const Row& row : result.rows) {
    if (shown++ >= max_rows) {
      out += "... (" +
             std::to_string(result.rows.size() - static_cast<size_t>(max_rows)) +
             " more rows)\n";
      break;
    }
    std::vector<std::string> cells;
    for (const Value& v : row) cells.push_back(v.ToSqlLiteral());
    out += Join(cells, " | ") + "\n";
  }
  out += "(" + std::to_string(result.rows.size()) + " rows)\n";
  return out;
}

}  // namespace qtf
