#ifndef QTF_CATALOG_CATALOG_H_
#define QTF_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "types/value.h"

namespace qtf {

/// Metadata for one column of a base table, including the statistics used
/// by the cardinality estimator.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kInt64;
  /// Estimated number of distinct values (>=1). Drives equality selectivity.
  double distinct_count = 1.0;
  /// Value domain for integer columns; used by the data generator and by
  /// range-predicate selectivity.
  int64_t min_value = 0;
  int64_t max_value = 0;
  /// Fraction of NULLs in the column (data generator honours this).
  double null_fraction = 0.0;
};

/// A uniqueness constraint: the listed column ordinals are unique in the
/// table (the first key registered is the primary key).
struct KeyDef {
  std::vector<int> column_ordinals;
};

/// Foreign key: this table's `column_ordinal` references
/// `referenced_table`.`referenced_ordinal` (which must be a key there).
struct ForeignKeyDef {
  int column_ordinal = 0;
  std::string referenced_table;
  int referenced_ordinal = 0;
};

/// Metadata for a base table.
class TableDef {
 public:
  TableDef(std::string name, std::vector<ColumnDef> columns, int64_t row_count)
      : name_(std::move(name)),
        columns_(std::move(columns)),
        row_count_(row_count) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  int64_t row_count() const { return row_count_; }
  const std::vector<KeyDef>& keys() const { return keys_; }
  const std::vector<ForeignKeyDef>& foreign_keys() const {
    return foreign_keys_;
  }

  void AddKey(KeyDef key) { keys_.push_back(std::move(key)); }
  void AddForeignKey(ForeignKeyDef fk) { foreign_keys_.push_back(std::move(fk)); }

  /// Ordinal of the named column, or -1.
  int FindColumn(const std::string& column_name) const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
  int64_t row_count_;
  std::vector<KeyDef> keys_;
  std::vector<ForeignKeyDef> foreign_keys_;
};

/// The test database's schema: a collection of table definitions. The paper
/// assumes a fixed test database is given as input (Section 2.3); Catalog is
/// that database's metadata surface.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a table; fails if the name already exists.
  Status AddTable(std::shared_ptr<TableDef> table);

  /// Looks a table up by name.
  Result<std::shared_ptr<const TableDef>> GetTable(
      const std::string& name) const;

  /// All table names in registration order.
  std::vector<std::string> TableNames() const { return table_order_; }

  size_t table_count() const { return tables_.size(); }

 private:
  std::map<std::string, std::shared_ptr<TableDef>> tables_;
  std::vector<std::string> table_order_;
};

}  // namespace qtf

#endif  // QTF_CATALOG_CATALOG_H_
