#include "catalog/catalog.h"

namespace qtf {

int TableDef::FindColumn(const std::string& column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

Status Catalog::AddTable(std::shared_ptr<TableDef> table) {
  QTF_CHECK(table != nullptr);
  const std::string& name = table->name();
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  table_order_.push_back(name);
  tables_[name] = std::move(table);
  return Status::OK();
}

Result<std::shared_ptr<const TableDef>> Catalog::GetTable(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return std::shared_ptr<const TableDef>(it->second);
}

}  // namespace qtf
