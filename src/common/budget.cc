#include "common/budget.h"

#include <limits>

namespace qtf {

double Deadline::remaining_seconds() const {
  if (never()) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(when_ - Clock::now()).count();
}

}  // namespace qtf
