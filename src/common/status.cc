#include "common/status.h"

namespace qtf {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

int32_t StatusCodeToWire(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 1;
    case StatusCode::kNotFound:
      return 2;
    case StatusCode::kAlreadyExists:
      return 3;
    case StatusCode::kOutOfRange:
      return 4;
    case StatusCode::kUnimplemented:
      return 5;
    case StatusCode::kInternal:
      return 6;
    case StatusCode::kExecutionError:
      return 7;
    case StatusCode::kDeadlineExceeded:
      return 8;
    case StatusCode::kCancelled:
      return 9;
    case StatusCode::kResourceExhausted:
      return 10;
    case StatusCode::kUnavailable:
      return 11;
  }
  return 6;  // unknown codes travel as Internal
}

StatusCode StatusCodeFromWire(int32_t wire) {
  switch (wire) {
    case 0:
      return StatusCode::kOk;
    case 1:
      return StatusCode::kInvalidArgument;
    case 2:
      return StatusCode::kNotFound;
    case 3:
      return StatusCode::kAlreadyExists;
    case 4:
      return StatusCode::kOutOfRange;
    case 5:
      return StatusCode::kUnimplemented;
    case 6:
      return StatusCode::kInternal;
    case 7:
      return StatusCode::kExecutionError;
    case 8:
      return StatusCode::kDeadlineExceeded;
    case 9:
      return StatusCode::kCancelled;
    case 10:
      return StatusCode::kResourceExhausted;
    case 11:
      return StatusCode::kUnavailable;
    default:
      return StatusCode::kInternal;
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace qtf
