#include "common/thread_pool.h"

namespace qtf {

ThreadPool::ThreadPool(int num_threads, size_t queue_capacity)
    : queue_capacity_(queue_capacity) {
  QTF_CHECK(num_threads >= 1) << "thread pool needs at least one worker";
  QTF_CHECK(queue_capacity_ >= 1) << "queue capacity must be positive";
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return queue_.size() < queue_capacity_ || shutting_down_;
    });
    QTF_CHECK(!shutting_down_) << "Submit() after Shutdown()";
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock,
                      [this] { return !queue_.empty() || shutting_down_; });
      if (queue_.empty()) return;  // shutting down and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    task();  // a packaged_task captures any exception into its future
  }
}

}  // namespace qtf
