#ifndef QTF_COMMON_LIMITS_H_
#define QTF_COMMON_LIMITS_H_

#include <cstddef>

#include "common/budget.h"
#include "common/fault_injection.h"

namespace qtf {

/// Resource-governance knobs shared by the in-process framework facade and
/// the serving layer. Extracted from RuleTestFramework::Options (which now
/// derives from this struct, keeping the old field names valid) so that
/// per-request admission control — RuleTestService and any transport in
/// front of it — reuses exactly the limits the framework was built with
/// instead of growing a parallel set (see docs/serving.md).
struct ServiceLimits {
  /// Search budget every optimization falls back to when its own options
  /// carry an unlimited one. Unlimited by default. When a limit trips the
  /// optimizer returns its best-so-far plan with `budget_exhausted` set
  /// (see OptimizerOptions::budget).
  SearchBudget default_budget;
  /// Whole-request deadline applied by the serving layer when a request
  /// does not carry its own; <= 0 (the default) means none. Checked
  /// between request phases (suite generation, compression, correctness
  /// execution), so an expired deadline surfaces as kDeadlineExceeded at
  /// the next phase boundary rather than mid-search.
  double default_deadline_seconds = 0.0;
  /// How components retry transient (kUnavailable) failures.
  RetryPolicy retry_policy;
  /// Admission bound of the serving layer: the maximum number of requests
  /// accepted-but-unfinished at once. Requests beyond it are shed
  /// immediately with kResourceExhausted (never queued indefinitely, never
  /// a hang — see docs/serving.md). Ignored by the in-process facade
  /// itself; RuleTestService enforces it for every transport.
  size_t max_queue_depth = 128;
};

}  // namespace qtf

#endif  // QTF_COMMON_LIMITS_H_
