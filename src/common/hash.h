#ifndef QTF_COMMON_HASH_H_
#define QTF_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

/// Shared hashing primitives for structural fingerprints and cache keys.
///
/// Everything in this header is a pure function of its inputs with no
/// dependence on `std::hash` or other platform-specific seeds, so hash
/// values are stable across processes, runs, and standard-library
/// implementations on 64-bit targets. That stability is load-bearing:
/// golden fingerprint tests hardcode expected values, and the fault
/// injector derives decisions from fingerprints, so a platform-dependent
/// hash would make chaos runs irreproducible across toolchains.

namespace qtf {

/// splitmix64 finalizer. Diffuses all input bits to all output bits;
/// the canonical cheap mixer for composing structural hashes.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Folds `v` into running hash `h` non-commutatively, so operand order
/// matters (Join(a,b) must not collide with Join(b,a)).
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  return Mix64(h * 0x100000001b3ULL ^ v);
}

/// FNV-1a over bytes. Used for strings (table names, column names)
/// instead of std::hash<std::string>, whose value is unspecified and
/// differs between libstdc++ / libc++ builds.
inline uint64_t Fnv1a(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace qtf

#endif  // QTF_COMMON_HASH_H_
