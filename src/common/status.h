#ifndef QTF_COMMON_STATUS_H_
#define QTF_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace qtf {

/// Error categories used across the framework.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kExecutionError,
  // Robustness taxonomy (docs/robustness.md): budgeted, cancellable,
  // fault-tolerant operation.
  kDeadlineExceeded,   // a Deadline/SearchBudget wall clock ran out
  kCancelled,          // a CancellationToken was triggered
  kResourceExhausted,  // a non-time budget (memo groups/exprs) ran out
  kUnavailable,        // transient failure; retrying may succeed
};

/// Returns a short human-readable name for `code` ("OK", "Internal", ...).
const char* StatusCodeToString(StatusCode code);

/// Stable on-the-wire numbering of StatusCode for the serving protocol
/// (src/net/wire.h). The enum above may be reordered or grown freely; this
/// mapping is frozen — new codes get new numbers, old numbers are never
/// reused — so old clients keep decoding errors from new servers.
int32_t StatusCodeToWire(StatusCode code);

/// Inverse of StatusCodeToWire. Unknown numbers (a newer peer) decode as
/// kInternal rather than failing, so an unrecognized error still surfaces
/// as an error.
StatusCode StatusCodeFromWire(int32_t wire);

/// Outcome of an operation that can fail. The framework does not use
/// exceptions (see DESIGN.md); fallible functions return Status or
/// Result<T> and callers propagate with QTF_RETURN_NOT_OK /
/// QTF_ASSIGN_OR_RETURN.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace qtf

/// Propagates a non-OK Status to the caller.
#define QTF_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::qtf::Status _qtf_status = (expr);         \
    if (!_qtf_status.ok()) return _qtf_status;  \
  } while (false)

#endif  // QTF_COMMON_STATUS_H_
