#ifndef QTF_COMMON_ARENA_H_
#define QTF_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"

namespace qtf {

/// Bump-pointer allocator owning all per-query physical executor state
/// (batch buffers, hash-index chains, build-side columns, sort runs), so a
/// query's working memory is released in one shot when the arena dies
/// instead of through thousands of individual frees.
///
/// Two usage modes:
///   * `Allocate(bytes, align)` / `New<T>(...)` — raw bump allocation.
///     New<T> registers T's destructor when it is non-trivial; destructors
///     run in reverse allocation order on Reset()/destruction.
///   * `ArenaAllocator<T>` / `ArenaVector<T>` — std-compatible allocator
///     whose deallocate is a no-op, for containers whose *storage* should
///     live in the arena while the container object itself is an ordinary
///     member (its destructor still runs normally; freeing is the no-op).
///
/// Not thread-safe: one arena per executing query, confined to the thread
/// driving that execution (concurrent correctness runs use one executor —
/// and so one arena — each).
class Arena {
 public:
  explicit Arena(size_t initial_block_bytes = kDefaultBlockBytes)
      : initial_block_bytes_(initial_block_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() { Reset(); }

  void* Allocate(size_t bytes, size_t align) {
    QTF_CHECK(align > 0 && (align & (align - 1)) == 0)
        << "alignment must be a power of two";
    if (bytes == 0) bytes = 1;
    size_t offset = Align(used_, align);
    if (current_ == nullptr || offset + bytes > capacity_) {
      AddBlock(bytes + align);
      offset = Align(used_, align);
    }
    used_ = offset + bytes;
    bytes_allocated_ += bytes;
    return current_ + offset;
  }

  /// Arena-constructs a T. Non-trivially-destructible types are queued for
  /// destruction (reverse order) at Reset()/arena destruction.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* mem = Allocate(sizeof(T), alignof(T));
    T* obj = new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      void* node_mem = Allocate(sizeof(DtorNode), alignof(DtorNode));
      auto* node = new (node_mem) DtorNode;
      node->fn = [](void* p) { static_cast<T*>(p)->~T(); };
      node->obj = obj;
      node->next = dtors_;
      dtors_ = node;
    }
    return obj;
  }

  /// Total bytes handed out (the executor reports this as
  /// qtf.exec.arena_bytes). Excludes block-rounding slack.
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total block footprint reserved from the heap.
  size_t bytes_reserved() const { return bytes_reserved_; }

  /// Runs pending destructors and releases every block. The arena is
  /// immediately reusable.
  void Reset() {
    for (DtorNode* node = dtors_; node != nullptr; node = node->next) {
      node->fn(node->obj);
    }
    dtors_ = nullptr;
    blocks_.clear();
    current_ = nullptr;
    capacity_ = used_ = 0;
    bytes_allocated_ = bytes_reserved_ = 0;
  }

 private:
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

  struct DtorNode {
    void (*fn)(void*);
    void* obj;
    DtorNode* next;
  };

  static size_t Align(size_t n, size_t align) {
    return (n + align - 1) & ~(align - 1);
  }

  void AddBlock(size_t min_bytes) {
    size_t size = blocks_.empty() ? initial_block_bytes_ : capacity_ * 2;
    if (size < min_bytes) size = min_bytes;
    blocks_.push_back(std::make_unique<char[]>(size));
    current_ = blocks_.back().get();
    capacity_ = size;
    used_ = 0;
    bytes_reserved_ += size;
  }

  size_t initial_block_bytes_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  char* current_ = nullptr;
  size_t capacity_ = 0;
  size_t used_ = 0;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
  DtorNode* dtors_ = nullptr;
};

/// std-compatible allocator over an Arena; deallocate is a no-op (memory
/// returns when the arena resets). Containers using it must not outlive
/// the arena.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {
    QTF_CHECK(arena_ != nullptr);
  }
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, size_t) {}  // freed wholesale by the arena

  Arena* arena() const { return arena_; }

  bool operator==(const ArenaAllocator& other) const {
    return arena_ == other.arena_;
  }
  bool operator!=(const ArenaAllocator& other) const {
    return arena_ != other.arena_;
  }

 private:
  Arena* arena_;
};

/// Vector whose element storage lives in an arena. Element destructors run
/// as usual when the vector dies; only the raw storage is arena-owned.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

template <typename T>
ArenaVector<T> MakeArenaVector(Arena* arena) {
  return ArenaVector<T>(ArenaAllocator<T>(arena));
}

}  // namespace qtf

#endif  // QTF_COMMON_ARENA_H_
