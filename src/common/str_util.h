#ifndef QTF_COMMON_STR_UTIL_H_
#define QTF_COMMON_STR_UTIL_H_

#include <string>
#include <vector>

namespace qtf {

/// Joins `parts` with `sep` ("a", "b" -> "a, b" for sep ", ").
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// SQL string literal with single quotes, quotes doubled ('O''Brien').
std::string SqlQuote(const std::string& s);

/// Formats a double without trailing zeros ("1.5", "2", "0.25").
std::string FormatDouble(double value);

/// Repeats `s` `count` times.
std::string Repeat(const std::string& s, int count);

/// Two-space indentation prefix for `depth` levels.
std::string Indent(int depth);

}  // namespace qtf

#endif  // QTF_COMMON_STR_UTIL_H_
