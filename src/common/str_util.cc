#include "common/str_util.h"

#include <cstdio>

namespace qtf {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string SqlQuote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

std::string Repeat(const std::string& s, int count) {
  std::string out;
  for (int i = 0; i < count; ++i) out += s;
  return out;
}

std::string Indent(int depth) { return Repeat("  ", depth); }

}  // namespace qtf
