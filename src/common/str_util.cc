#include "common/str_util.h"

#include <cstdio>
#include <cstdlib>

namespace qtf {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string SqlQuote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

std::string FormatDouble(double value) {
  // Shortest of %.12g / %.15g / %.17g that parses back to the same bits:
  // keeps the friendly "1.5"/"0.25" renderings while guaranteeing that the
  // SQL round trip (render, then re-parse with strtod) is lossless.
  char buf[64];
  for (int precision : {12, 15, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::string Repeat(const std::string& s, int count) {
  std::string out;
  for (int i = 0; i < count; ++i) out += s;
  return out;
}

std::string Indent(int depth) { return Repeat("  ", depth); }

}  // namespace qtf
