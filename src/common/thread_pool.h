#ifndef QTF_COMMON_THREAD_POOL_H_
#define QTF_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"

namespace qtf {

/// Fixed-size thread pool with a bounded FIFO queue. The bound gives
/// backpressure: Submit() blocks (rather than buffering unboundedly) when
/// the queue is full. Shutdown() — also run by the destructor — stops
/// accepting work, drains everything already queued, and joins the workers.
///
/// Tasks report results and exceptions through the returned std::future.
/// Tasks must not Submit() to their own pool and block on the result: with
/// every worker waiting on a queued subtask there is no thread left to run
/// it. Fan out from the coordinating (non-worker) thread instead.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads, size_t queue_capacity = 1024);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` and returns a future for its result. Blocks while the
  /// queue is full; CHECK-fails after Shutdown().
  template <typename Fn>
  auto Submit(Fn&& fn)
      -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using R = std::invoke_result_t<std::decay_t<Fn>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task] { (*task)(); });
    return future;
  }

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Idempotent: drains the queue, joins all workers.
  void Shutdown();

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  const size_t queue_capacity_;
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutting_down_ = false;
};

/// Runs fn(0) .. fn(n-1) and returns their results in index order —
/// deterministic regardless of which worker finishes first. With a null
/// pool, a single-worker pool, or n <= 1 everything runs inline on the
/// caller. Exceptions from fn propagate to the caller (the lowest-index
/// one wins); all tasks are waited for either way, so fn may safely
/// capture locals by reference.
template <typename Fn>
auto ParallelFor(ThreadPool* pool, int n, Fn&& fn)
    -> std::vector<std::invoke_result_t<std::decay_t<Fn>, int>> {
  using R = std::invoke_result_t<std::decay_t<Fn>, int>;
  std::vector<R> results;
  if (n <= 0) return results;
  results.reserve(static_cast<size_t>(n));
  if (pool == nullptr || pool->num_threads() <= 1 || n == 1) {
    for (int i = 0; i < n; ++i) results.push_back(fn(i));
    return results;
  }
  std::vector<std::future<R>> futures;
  futures.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    futures.push_back(pool->Submit([&fn, i] { return fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      results.push_back(future.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace qtf

#endif  // QTF_COMMON_THREAD_POOL_H_
