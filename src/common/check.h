#ifndef QTF_COMMON_CHECK_H_
#define QTF_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace qtf {
namespace internal {

/// Accumulates a failure message and aborts the process when destroyed at
/// the end of the full expression. Used only via QTF_CHECK; invariant
/// violations in this framework are programming errors, not recoverable
/// conditions.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " CHECK failed: " << condition << " ";
  }
  CheckFailStream(const CheckFailStream&) = delete;
  CheckFailStream& operator=(const CheckFailStream&) = delete;

  [[noreturn]] ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Lowest-precedence sink that turns the streamed CheckFailStream into void
/// so it can sit in the false branch of the QTF_CHECK ternary.
struct Voidify {
  // const& so the operand may be the freshly-constructed temporary (no
  // message streamed yet) as well as the reference returned by <<.
  void operator&(const CheckFailStream&) {}
};

}  // namespace internal
}  // namespace qtf

/// Aborts with a message if `condition` is false. Additional context can be
/// streamed: QTF_CHECK(x > 0) << "x=" << x;
#define QTF_CHECK(condition)              \
  (condition) ? static_cast<void>(0)      \
              : ::qtf::internal::Voidify() & \
                    ::qtf::internal::CheckFailStream(__FILE__, __LINE__, #condition)

#endif  // QTF_COMMON_CHECK_H_
