#ifndef QTF_COMMON_RNG_H_
#define QTF_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace qtf {

/// Deterministic random number generator. All randomness in the framework
/// (data generation, random query generation, workload sampling) flows from
/// explicitly seeded Rng instances so that tests and benchmarks are
/// reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    QTF_CHECK(lo <= hi) << "UniformInt(" << lo << ", " << hi << ")";
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Uniformly chosen element of `items` (by const reference).
  template <typename T>
  const T& PickOne(const std::vector<T>& items) {
    QTF_CHECK(!items.empty()) << "PickOne on empty vector";
    return items[static_cast<size_t>(
        UniformInt(0, static_cast<int64_t>(items.size()) - 1))];
  }

  /// Uniformly chosen index into a container of `size` elements.
  size_t PickIndex(size_t size) {
    QTF_CHECK(size > 0) << "PickIndex on empty range";
    return static_cast<size_t>(
        UniformInt(0, static_cast<int64_t>(size) - 1));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = PickIndex(i);
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Derives an independent child generator; used to give subsystems their
  /// own deterministic stream.
  Rng Fork() { return Rng(engine_()); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace qtf

#endif  // QTF_COMMON_RNG_H_
