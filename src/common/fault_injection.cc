#include "common/fault_injection.h"

namespace qtf {
namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashSite(const char* site) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (const char* p = site; *p != '\0'; ++p) {
    h = (h ^ static_cast<uint64_t>(*p)) * 0x100000001b3ULL;
  }
  return h;
}

/// Uniform double in [0, 1) from the top 53 bits of a mixed hash.
double ToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

bool FaultInjector::ShouldFault(const char* site, uint64_t key) const {
  if (config_.fault_probability <= 0.0) return false;
  uint64_t h = Mix64(config_.seed ^ Mix64(HashSite(site) ^ key));
  return ToUnit(h) < config_.fault_probability;
}

Status FaultInjector::Probe(const char* site, uint64_t key) const {
  if (!enabled()) return Status::OK();
  if (config_.latency_probability > 0.0 && config_.latency_micros > 0.0) {
    // Distinct salt so latency and fault decisions are independent.
    uint64_t h =
        Mix64(config_.seed ^ Mix64(HashSite(site) ^ key ^ 0x5851f42d4c957f2dULL));
    if (ToUnit(h) < config_.latency_probability) {
      if (latency_total_ != nullptr) latency_total_->Increment();
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(config_.latency_micros));
    }
  }
  if (!ShouldFault(site, key)) return Status::OK();
  if (faults_total_ != nullptr) faults_total_->Increment();
  if (obs::Counter* per_site = SiteCounter(site)) per_site->Increment();
  return Status::Unavailable(std::string("injected fault at ") + site);
}

double FaultInjector::JitterFactor(uint64_t key, int attempt,
                                   double fraction) const {
  if (fraction <= 0.0 || config_.seed == 0) return 1.0;
  uint64_t h = Mix64(config_.seed ^ Mix64(key ^ 0x94d049bb133111ebULL) ^
                     static_cast<uint64_t>(attempt));
  return 1.0 - fraction + 2.0 * fraction * ToUnit(h);
}

}  // namespace qtf
