#ifndef QTF_COMMON_BUDGET_H_
#define QTF_COMMON_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace qtf {

/// A point in time after which work should stop. Default-constructed
/// deadlines never expire, so unbudgeted code paths stay branch-cheap
/// (never() is one comparison against a sentinel).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  Deadline() : when_(Clock::time_point::max()) {}

  static Deadline Never() { return Deadline(); }
  static Deadline After(double seconds) {
    Deadline d;
    d.when_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(seconds));
    return d;
  }

  bool never() const { return when_ == Clock::time_point::max(); }
  bool expired() const { return !never() && Clock::now() >= when_; }

  /// Seconds until expiry; +infinity for never(), <= 0 once expired.
  double remaining_seconds() const;

 private:
  Clock::time_point when_;
};

/// Read side of a cancellation signal. Copies share the underlying flag, so
/// a token can be handed to every layer of a run (suite generation,
/// prefetch tasks, compression, correctness execution) and one Cancel()
/// stops them all. A default-constructed token is never cancelled and costs
/// one null check to poll.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// True when this token can ever be cancelled (it came from a source).
  bool cancellable() const { return state_ != nullptr; }
  bool cancelled() const {
    return state_ != nullptr && state_->load(std::memory_order_acquire);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<std::atomic<bool>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<std::atomic<bool>> state_;
};

/// Write side: owns the flag, hands out tokens. Thread-safe; Cancel() is
/// idempotent and may be called from any thread (that is the point).
class CancellationSource {
 public:
  CancellationSource()
      : state_(std::make_shared<std::atomic<bool>>(false)) {}

  CancellationToken token() const { return CancellationToken(state_); }
  void Cancel() { state_->store(true, std::memory_order_release); }
  bool cancelled() const { return state_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// Limits on one optimizer search (paper: one Plan(q, ¬R) invocation).
/// Zero (the default) means unlimited for every dimension, so a
/// default-constructed budget reproduces pre-budget behaviour exactly.
///
/// The memo dimensions are checked exactly (integer compares at task-loop
/// granularity) and are therefore deterministic: the same query under the
/// same budget always truncates at the same point, at any thread count.
/// `wall_seconds` depends on the clock and machine load — use it to bound
/// damage, not in experiments that assert determinism.
struct SearchBudget {
  /// Wall-clock bound on exploration; the search keeps the memo it has and
  /// still implements/costs it, so a near-expired budget degrades to
  /// "best plan found so far" rather than an error.
  double wall_seconds = 0.0;
  /// Bound on memo groups created during exploration.
  int max_memo_groups = 0;
  /// Bound on total memo expressions created during exploration.
  int64_t max_memo_exprs = 0;

  bool unlimited() const {
    return wall_seconds <= 0.0 && max_memo_groups <= 0 && max_memo_exprs <= 0;
  }
};

}  // namespace qtf

#endif  // QTF_COMMON_BUDGET_H_
