#ifndef QTF_COMMON_RESULT_H_
#define QTF_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace qtf {

/// Either a value of type T or an error Status. Mirrors
/// arrow::Result/absl::StatusOr; used as the return type of all fallible
/// functions that produce a value.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error Status keeps call sites
  /// terse (`return value;` / `return Status::Internal(...)`), matching the
  /// arrow::Result idiom.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : value_(std::move(status)) {
    QTF_CHECK(!this->status().ok()) << "Result constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(value_); }

  /// Returns the error, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(value_);
  }

  /// Value access; requires ok().
  const T& value() const& {
    QTF_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(value_);
  }
  T& value() & {
    QTF_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(value_);
  }
  T&& value() && {
    QTF_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace qtf

#define QTF_CONCAT_IMPL(x, y) x##y
#define QTF_CONCAT(x, y) QTF_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// binds the value to `lhs` (which may include a type, e.g.
/// `QTF_ASSIGN_OR_RETURN(auto plan, Optimize(q))`).
#define QTF_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  QTF_ASSIGN_OR_RETURN_IMPL(QTF_CONCAT(_qtf_result_, __LINE__), lhs, rexpr)

#define QTF_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                              \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value()

/// Evaluates `rexpr` (a Status); returns it on error.
#define QTF_RETURN_IF_ERROR(rexpr)                                  \
  QTF_RETURN_IF_ERROR_IMPL(QTF_CONCAT(_qtf_status_, __LINE__), rexpr)

#define QTF_RETURN_IF_ERROR_IMPL(st, rexpr) \
  do {                                      \
    ::qtf::Status st = (rexpr);             \
    if (!st.ok()) return st;                \
  } while (0)

#endif  // QTF_COMMON_RESULT_H_
