#ifndef QTF_COMMON_FAULT_INJECTION_H_
#define QTF_COMMON_FAULT_INJECTION_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/metrics.h"

namespace qtf {

/// Named injection sites. A site is a specific fallible call in a hot path;
/// the chaos suite (tests/test_robustness.cc) asserts the framework
/// survives kUnavailable from every one of them. See docs/robustness.md
/// for the catalog.
namespace fault_sites {
inline constexpr const char kPlanCacheGet[] = "plan_cache.get";
inline constexpr const char kOptimizerApplyRule[] = "optimizer.apply_rule";
inline constexpr const char kExecutorNextBatch[] = "executor.next_batch";
inline constexpr const char kPrefetchTask[] = "prefetch.task";
}  // namespace fault_sites

/// How callers retry kUnavailable errors: capped exponential backoff with
/// deterministic jitter (FaultInjector::JitterFactor). Defaults are sized
/// for the in-process framework — microseconds, not the seconds a network
/// client would use — so chaos tests stay fast.
struct RetryPolicy {
  /// Total tries including the first; <= 1 disables retrying.
  int max_attempts = 3;
  double initial_backoff_micros = 50.0;
  double backoff_multiplier = 2.0;
  double max_backoff_micros = 2000.0;
  /// Backoff is scaled by a factor uniform in [1 - jitter, 1 + jitter].
  double jitter_fraction = 0.5;
};

/// True for errors a retry can clear (the only code the injector emits).
inline bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

/// Sleeps the attempt'th backoff (0-based attempt that just failed),
/// capped and scaled by `jitter_factor`.
inline void SleepForBackoff(const RetryPolicy& policy, int attempt,
                            double jitter_factor) {
  double micros = policy.initial_backoff_micros *
                  std::pow(policy.backoff_multiplier, attempt);
  micros = std::min(micros, policy.max_backoff_micros) * jitter_factor;
  if (micros <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::micro>(micros));
}

/// Deterministic, seed-driven fault injector. Whether a probe faults is a
/// pure function of (seed, site, key) — no internal sequence counter — so
/// the same run replays the same faults at any thread count and any task
/// interleaving, which is what lets the chaos suite assert
/// serial == parallel determinism under injected failures.
///
/// Seed 0 disables injection entirely; every probe is then a single relaxed
/// load, and instrumented paths behave bit-for-bit like an uninjected
/// build. set_enabled(false) gates a nonzero-seed injector at runtime
/// (e.g. to build a clean test suite before a chaos phase) without
/// perturbing the hash stream.
///
/// Thread-safe: configuration is immutable after construction, the enable
/// gate is atomic, and counters are lock-free.
class FaultInjector {
 public:
  struct Config {
    /// 0 = injection disabled, probes never fault.
    uint64_t seed = 0;
    /// Per-probe probability of an injected kUnavailable.
    double fault_probability = 0.0;
    /// Per-probe probability of injected latency (independent of faults).
    double latency_probability = 0.0;
    /// Artificial delay injected on a latency hit.
    double latency_micros = 0.0;
  };

  explicit FaultInjector(const Config& config)
      : config_(config), enabled_(config.seed != 0) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const Config& config() const { return config_; }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Runtime gate; a seed-0 injector can never be enabled.
  void set_enabled(bool on) {
    enabled_.store(on && config_.seed != 0, std::memory_order_relaxed);
  }

  /// Resolves the qtf.robustness.* counters this injector reports into.
  /// Inline so the metrics dependency stays in the caller's library (the
  /// common library does not link obs). Pass nullptr to stop reporting.
  void set_metrics(obs::MetricsRegistry* metrics) {
    if (metrics == nullptr) {
      faults_total_ = nullptr;
      latency_total_ = nullptr;
      for (auto& counter : site_faults_) counter = nullptr;
      return;
    }
    faults_total_ = metrics->counter("qtf.robustness.faults_injected");
    latency_total_ = metrics->counter("qtf.robustness.latency_injected");
    site_faults_[0] = metrics->counter(
        std::string("qtf.robustness.fault.") + fault_sites::kPlanCacheGet);
    site_faults_[1] =
        metrics->counter(std::string("qtf.robustness.fault.") +
                         fault_sites::kOptimizerApplyRule);
    site_faults_[2] =
        metrics->counter(std::string("qtf.robustness.fault.") +
                         fault_sites::kExecutorNextBatch);
    site_faults_[3] = metrics->counter(
        std::string("qtf.robustness.fault.") + fault_sites::kPrefetchTask);
  }

  /// Pure decision: would a probe at (site, key) fault? Ignores the enable
  /// gate; exposed for determinism tests.
  bool ShouldFault(const char* site, uint64_t key) const;

  /// One probe at a named site. Returns kUnavailable (and counts it) when
  /// the hash fires, OK otherwise; independently may sleep
  /// config().latency_micros. Callers fold the key from whatever makes the
  /// call unique *and stable across schedules* — an edge (target, query,
  /// attempt), a query fingerprint, a plan-node sequence number.
  /// Const because probing only touches atomics: holders of a
  /// `const FaultInjector*` (e.g. Executor) can probe but not reconfigure.
  Status Probe(const char* site, uint64_t key) const;

  /// Deterministic backoff jitter in [1 - f, 1 + f] for (key, attempt),
  /// f = RetryPolicy::jitter_fraction. Seeded by this injector so retry
  /// timing is reproducible; returns 1 when disabled.
  double JitterFactor(uint64_t key, int attempt, double fraction) const;

  /// Canonical key for per-edge probes: mixes (target, query, attempt) so
  /// a retry re-rolls the fault decision (transient faults clear with
  /// probability 1 - p per extra attempt).
  static uint64_t EdgeKey(int target, int query, int attempt) {
    uint64_t k =
        (static_cast<uint64_t>(static_cast<uint32_t>(target)) << 32) |
        static_cast<uint64_t>(static_cast<uint32_t>(query));
    return k * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(attempt);
  }

 private:
  obs::Counter* SiteCounter(const char* site) const {
    using namespace fault_sites;
    if (std::strcmp(site, kPlanCacheGet) == 0) return site_faults_[0];
    if (std::strcmp(site, kOptimizerApplyRule) == 0) return site_faults_[1];
    if (std::strcmp(site, kExecutorNextBatch) == 0) return site_faults_[2];
    if (std::strcmp(site, kPrefetchTask) == 0) return site_faults_[3];
    return nullptr;
  }

  const Config config_;
  std::atomic<bool> enabled_;
  obs::Counter* faults_total_ = nullptr;
  obs::Counter* latency_total_ = nullptr;
  obs::Counter* site_faults_[4] = {nullptr, nullptr, nullptr, nullptr};
};

}  // namespace qtf

#endif  // QTF_COMMON_FAULT_INJECTION_H_
