#ifndef QTF_EXPR_PROGRAM_H_
#define QTF_EXPR_PROGRAM_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "expr/column_vector.h"
#include "expr/eval.h"
#include "expr/expr.h"
#include "obs/metrics.h"

namespace qtf {

/// A scalar expression compiled once per operator into a flat postfix
/// instruction sequence, then executed over whole column vectors — the
/// batched replacement for the per-row recursive interpreter in
/// expr/eval.h. Semantics are bit-identical to Eval(): NULL-strict
/// comparisons/arithmetic, Kleene AND/OR, NOT(NULL) = NULL, IS NULL always
/// boolean, division by zero yields NULL.
///
/// A compiled program is immutable and shareable across threads; all
/// per-execution state (temporary columns, the operand stack) lives in an
/// EvalScratch owned by the calling operator, so cached programs can be
/// run concurrently.
class EvalScratch;

class EvalProgram {
 public:
  /// Compiles `expr` against `bindings` (ColumnId -> input batch position).
  /// Keeps a reference to `expr`, pinning every node (and the constants the
  /// instructions point into) for the program's lifetime.
  static Result<std::shared_ptr<const EvalProgram>> Compile(
      const ExprPtr& expr, const ColumnBindings& bindings);

  /// Evaluates over `input`, returning the result column: either a column
  /// of `input` (bare column reference — zero copy) or a scratch slot.
  /// The pointer is valid until the next Run on the same scratch.
  Result<const ColumnVector*> Run(const Batch& input,
                                  EvalScratch* scratch) const;

  ValueType result_type() const { return root_->type(); }
  int num_slots() const { return static_cast<int>(slot_types_.size()); }
  ValueType slot_type(int i) const {
    return slot_types_[static_cast<size_t>(i)];
  }
  int max_stack_depth() const { return max_stack_; }

 private:
  enum class OpCode : uint8_t {
    kLoadColumn,  // push input column col_pos
    kLoadConst,   // fill slot with *constant, push
    kCompare,     // pop rhs, lhs; typed compare -> bool slot
    kAnd,         // Kleene
    kOr,          // Kleene
    kNot,
    kIsNull,
    kArith,       // typed arithmetic -> out_type slot
  };

  struct Instr {
    OpCode op;
    CompareOp cmp = CompareOp::kEq;
    ArithOp arith = ArithOp::kAdd;
    ValueType out_type = ValueType::kBool;
    ValueType lhs_type = ValueType::kInt64;  // kCompare lane selection
    ValueType rhs_type = ValueType::kInt64;
    int col_pos = -1;                  // kLoadColumn
    const Value* constant = nullptr;   // kLoadConst; points into root_
    int slot = -1;                     // producing instrs: scratch slot
  };

  EvalProgram() = default;

  Status CompileNode(const Expr& expr, const ColumnBindings& bindings,
                     int* stack_depth);

  std::vector<Instr> instrs_;
  std::vector<ValueType> slot_types_;
  int max_stack_ = 0;
  ExprPtr root_;  // pins shared expression nodes and their constants

  friend class EvalScratch;
};

/// Per-operator evaluation workspace: one ColumnVector per producing
/// instruction plus the operand stack, all arena-backed. Reused across
/// batches; Prepare() is idempotent per program.
class EvalScratch {
 public:
  explicit EvalScratch(Arena* arena) : arena_(arena) {}

  /// Sizes slots/stack for `program`. Must be called (once) before Run.
  void Prepare(const EvalProgram& program) {
    slots_.clear();
    slots_.reserve(program.slot_types_.size());
    for (ValueType t : program.slot_types_) slots_.emplace_back(t, arena_);
    stack_.assign(static_cast<size_t>(program.max_stack_), nullptr);
  }

 private:
  Arena* arena_;
  std::vector<ColumnVector> slots_;
  std::vector<const ColumnVector*> stack_;

  friend class EvalProgram;
};

/// Thread-safe cache of compiled programs keyed by (expression node,
/// input-layout fingerprint). Each cached entry pins its expression via
/// the program's root reference, so a key's address cannot be recycled
/// while the entry lives — lookups never alias a dead expression.
///
/// Shared by CorrectnessRunner across every plan of a run: Plan(q) and
/// Plan(q, ¬R) share predicate/projection subtrees, so the second
/// compilation of every shared expression is a hit (reported as
/// qtf.exec.eval_cache_{hits,misses}).
class EvalProgramCache {
 public:
  EvalProgramCache() = default;
  EvalProgramCache(const EvalProgramCache&) = delete;
  EvalProgramCache& operator=(const EvalProgramCache&) = delete;

  /// Wires hit/miss counters (borrowed; may be nullptr).
  void set_metrics(obs::Counter* hits, obs::Counter* misses) {
    std::lock_guard<std::mutex> lock(mu_);
    hits_ = hits;
    misses_ = misses;
  }

  /// Returns the cached program for (expr, layout_fingerprint) or compiles
  /// and caches it. `layout_fingerprint` must identify the ColumnId layout
  /// `bindings` was built from.
  Result<std::shared_ptr<const EvalProgram>> GetOrCompile(
      const ExprPtr& expr, const ColumnBindings& bindings,
      uint64_t layout_fingerprint);

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

 private:
  struct Key {
    const Expr* expr;
    uint64_t layout;
    bool operator==(const Key& other) const {
      return expr == other.expr && layout == other.layout;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(HashCombine(
          reinterpret_cast<uintptr_t>(k.expr), k.layout));
    }
  };

  /// Safety valve for very long-lived caches; far above any single
  /// correctness run's distinct-expression count.
  static constexpr size_t kMaxEntries = 65536;

  mutable std::mutex mu_;
  std::unordered_map<Key, std::shared_ptr<const EvalProgram>, KeyHash> map_;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
};

/// Fingerprint of a physical row layout (order-sensitive), for program
/// cache keys.
uint64_t LayoutFingerprint(const std::vector<ColumnId>& layout);

}  // namespace qtf

#endif  // QTF_EXPR_PROGRAM_H_
