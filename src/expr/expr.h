#ifndef QTF_EXPR_EXPR_H_
#define QTF_EXPR_EXPR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "types/value.h"

namespace qtf {

/// Globally unique identifier of a column instance within one query.
///
/// Every Get operator instantiates fresh ids for the columns of its base
/// table, and computed/aggregate outputs allocate new ids. Expressions
/// reference ids, never positions, so transformation rules never need to
/// rebind columns when operators are reordered (mirroring column identities
/// in Cascades-style optimizers).
using ColumnId = int32_t;

enum class ExprKind {
  kColumnRef = 0,
  kConstant,
  kComparison,
  kAnd,
  kOr,
  kNot,
  kArithmetic,
  kIsNull,
};

enum class CompareOp { kEq = 0, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd = 0, kSub, kMul, kDiv };

const char* CompareOpToSql(CompareOp op);
const char* ArithOpToSql(ArithOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Maps a ColumnId to its display name for SQL/debug rendering.
using ColumnNameResolver = std::function<std::string(ColumnId)>;

/// Immutable scalar expression node. Shared freely between plans;
/// construction goes through the factory helpers at the bottom of this
/// header (Col, Lit, Cmp, And, Or, Not, Arith, IsNull).
class Expr {
 public:
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }
  /// Static result type of the expression.
  ValueType type() const { return type_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  /// SQL-ish rendering; `resolver` supplies column names (pass nullptr to
  /// render ids as "c<id>").
  virtual std::string ToString(const ColumnNameResolver* resolver) const = 0;

 protected:
  Expr(ExprKind kind, ValueType type, std::vector<ExprPtr> children)
      : kind_(kind), type_(type), children_(std::move(children)) {}

 private:
  ExprKind kind_;
  ValueType type_;
  std::vector<ExprPtr> children_;
};

class ColumnRefExpr final : public Expr {
 public:
  ColumnRefExpr(ColumnId id, ValueType type)
      : Expr(ExprKind::kColumnRef, type, {}), id_(id) {}
  ColumnId id() const { return id_; }
  std::string ToString(const ColumnNameResolver* resolver) const override;

 private:
  ColumnId id_;
};

class ConstantExpr final : public Expr {
 public:
  explicit ConstantExpr(Value value)
      : Expr(ExprKind::kConstant, value.type(), {}), value_(std::move(value)) {}
  const Value& value() const { return value_; }
  std::string ToString(const ColumnNameResolver* resolver) const override;

 private:
  Value value_;
};

class ComparisonExpr final : public Expr {
 public:
  ComparisonExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kComparison, ValueType::kBool,
             {std::move(left), std::move(right)}),
        op_(op) {}
  CompareOp op() const { return op_; }
  const ExprPtr& left() const { return children()[0]; }
  const ExprPtr& right() const { return children()[1]; }
  std::string ToString(const ColumnNameResolver* resolver) const override;

 private:
  CompareOp op_;
};

class AndExpr final : public Expr {
 public:
  AndExpr(ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kAnd, ValueType::kBool,
             {std::move(left), std::move(right)}) {}
  std::string ToString(const ColumnNameResolver* resolver) const override;
};

class OrExpr final : public Expr {
 public:
  OrExpr(ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kOr, ValueType::kBool,
             {std::move(left), std::move(right)}) {}
  std::string ToString(const ColumnNameResolver* resolver) const override;
};

class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr input)
      : Expr(ExprKind::kNot, ValueType::kBool, {std::move(input)}) {}
  std::string ToString(const ColumnNameResolver* resolver) const override;
};

class ArithmeticExpr final : public Expr {
 public:
  ArithmeticExpr(ArithOp op, ExprPtr left, ExprPtr right, ValueType type)
      : Expr(ExprKind::kArithmetic, type, {std::move(left), std::move(right)}),
        op_(op) {}
  ArithOp op() const { return op_; }
  std::string ToString(const ColumnNameResolver* resolver) const override;

 private:
  ArithOp op_;
};

class IsNullExpr final : public Expr {
 public:
  explicit IsNullExpr(ExprPtr input)
      : Expr(ExprKind::kIsNull, ValueType::kBool, {std::move(input)}) {}
  std::string ToString(const ColumnNameResolver* resolver) const override;
};

// ---- Factory helpers ----

ExprPtr Col(ColumnId id, ValueType type);
ExprPtr Lit(Value value);
ExprPtr LitInt(int64_t v);
ExprPtr LitDouble(double v);
ExprPtr LitString(std::string v);
ExprPtr Cmp(CompareOp op, ExprPtr left, ExprPtr right);
ExprPtr Eq(ExprPtr left, ExprPtr right);
ExprPtr And(ExprPtr left, ExprPtr right);
ExprPtr Or(ExprPtr left, ExprPtr right);
ExprPtr Not(ExprPtr input);
ExprPtr Arith(ArithOp op, ExprPtr left, ExprPtr right);
ExprPtr IsNull(ExprPtr input);

}  // namespace qtf

#endif  // QTF_EXPR_EXPR_H_
