#include "expr/eval.h"

namespace qtf {

ColumnBindings::ColumnBindings(const std::vector<ColumnId>& layout) {
  for (size_t i = 0; i < layout.size(); ++i) {
    positions_[layout[i]] = static_cast<int>(i);
  }
}

int ColumnBindings::PositionOf(ColumnId id) const {
  auto it = positions_.find(id);
  QTF_CHECK(it != positions_.end()) << "unbound column c" << id;
  return it->second;
}

bool IsTrue(const Value& v) { return !v.is_null() && v.boolean(); }

namespace {

/// Compares two non-null values, allowing int64/double cross-comparison.
int CompareValues(const Value& a, const Value& b) {
  if (a.type() != b.type()) {
    QTF_CHECK((a.type() == ValueType::kInt64 || a.type() == ValueType::kDouble) &&
              (b.type() == ValueType::kInt64 || b.type() == ValueType::kDouble))
        << "incomparable types";
    double x = a.AsDouble(), y = b.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  return a.Compare(b);
}

Result<Value> EvalComparison(const ComparisonExpr& cmp,
                             const ColumnBindings& bindings, const Row& row) {
  QTF_ASSIGN_OR_RETURN(Value left, Eval(*cmp.left(), bindings, row));
  QTF_ASSIGN_OR_RETURN(Value right, Eval(*cmp.right(), bindings, row));
  if (left.is_null() || right.is_null()) return Value::Null(ValueType::kBool);
  int c = CompareValues(left, right);
  bool result = false;
  switch (cmp.op()) {
    case CompareOp::kEq:
      result = c == 0;
      break;
    case CompareOp::kNe:
      result = c != 0;
      break;
    case CompareOp::kLt:
      result = c < 0;
      break;
    case CompareOp::kLe:
      result = c <= 0;
      break;
    case CompareOp::kGt:
      result = c > 0;
      break;
    case CompareOp::kGe:
      result = c >= 0;
      break;
  }
  return Value::Bool(result);
}

Result<Value> EvalArithmetic(const ArithmeticExpr& arith,
                             const ColumnBindings& bindings, const Row& row) {
  QTF_ASSIGN_OR_RETURN(Value left, Eval(*arith.children()[0], bindings, row));
  QTF_ASSIGN_OR_RETURN(Value right, Eval(*arith.children()[1], bindings, row));
  if (left.is_null() || right.is_null()) return Value::Null(arith.type());
  if (arith.type() == ValueType::kInt64) {
    int64_t a = left.int64(), b = right.int64();
    switch (arith.op()) {
      case ArithOp::kAdd:
        return Value::Int64(a + b);
      case ArithOp::kSub:
        return Value::Int64(a - b);
      case ArithOp::kMul:
        return Value::Int64(a * b);
      case ArithOp::kDiv:
        if (b == 0) return Value::Null(ValueType::kInt64);
        return Value::Int64(a / b);
    }
  }
  double a = left.AsDouble(), b = right.AsDouble();
  switch (arith.op()) {
    case ArithOp::kAdd:
      return Value::Double(a + b);
    case ArithOp::kSub:
      return Value::Double(a - b);
    case ArithOp::kMul:
      return Value::Double(a * b);
    case ArithOp::kDiv:
      if (b == 0.0) return Value::Null(ValueType::kDouble);
      return Value::Double(a / b);
  }
  return Status::Internal("unreachable arithmetic op");
}

}  // namespace

Result<Value> Eval(const Expr& expr, const ColumnBindings& bindings,
                   const Row& row) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      int pos = bindings.PositionOf(ref.id());
      QTF_CHECK(pos >= 0 && static_cast<size_t>(pos) < row.size());
      return row[static_cast<size_t>(pos)];
    }
    case ExprKind::kConstant:
      return static_cast<const ConstantExpr&>(expr).value();
    case ExprKind::kComparison:
      return EvalComparison(static_cast<const ComparisonExpr&>(expr), bindings,
                            row);
    case ExprKind::kAnd: {
      QTF_ASSIGN_OR_RETURN(Value a, Eval(*expr.children()[0], bindings, row));
      if (!a.is_null() && !a.boolean()) return Value::Bool(false);
      QTF_ASSIGN_OR_RETURN(Value b, Eval(*expr.children()[1], bindings, row));
      if (!b.is_null() && !b.boolean()) return Value::Bool(false);
      if (a.is_null() || b.is_null()) return Value::Null(ValueType::kBool);
      return Value::Bool(true);
    }
    case ExprKind::kOr: {
      QTF_ASSIGN_OR_RETURN(Value a, Eval(*expr.children()[0], bindings, row));
      if (!a.is_null() && a.boolean()) return Value::Bool(true);
      QTF_ASSIGN_OR_RETURN(Value b, Eval(*expr.children()[1], bindings, row));
      if (!b.is_null() && b.boolean()) return Value::Bool(true);
      if (a.is_null() || b.is_null()) return Value::Null(ValueType::kBool);
      return Value::Bool(false);
    }
    case ExprKind::kNot: {
      QTF_ASSIGN_OR_RETURN(Value a, Eval(*expr.children()[0], bindings, row));
      if (a.is_null()) return Value::Null(ValueType::kBool);
      return Value::Bool(!a.boolean());
    }
    case ExprKind::kArithmetic:
      return EvalArithmetic(static_cast<const ArithmeticExpr&>(expr), bindings,
                            row);
    case ExprKind::kIsNull: {
      QTF_ASSIGN_OR_RETURN(Value a, Eval(*expr.children()[0], bindings, row));
      return Value::Bool(a.is_null());
    }
  }
  return Status::Internal("unknown expression kind");
}

}  // namespace qtf
