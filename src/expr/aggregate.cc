#include "expr/aggregate.h"

#include "common/check.h"
#include "common/hash.h"
#include "expr/analysis.h"

namespace qtf {

const char* AggKindToSql(AggKind kind) {
  switch (kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
    case AggKind::kAvg:
      return "AVG";
  }
  return "?";
}

ValueType AggregateCall::ResultType() const {
  switch (kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return ValueType::kInt64;
    case AggKind::kAvg:
      return ValueType::kDouble;
    case AggKind::kSum:
    case AggKind::kMin:
    case AggKind::kMax:
      QTF_CHECK(arg != nullptr);
      return arg->type();
  }
  return ValueType::kInt64;
}

std::string AggregateCall::ToString(const ColumnNameResolver* resolver) const {
  if (kind == AggKind::kCountStar) return "COUNT(*)";
  QTF_CHECK(arg != nullptr);
  return std::string(AggKindToSql(kind)) + "(" + arg->ToString(resolver) + ")";
}

bool AggregateCallEquals(const AggregateCall& a, const AggregateCall& b) {
  if (a.kind != b.kind) return false;
  if ((a.arg == nullptr) != (b.arg == nullptr)) return false;
  if (a.arg == nullptr) return true;
  return ExprEquals(*a.arg, *b.arg);
}

size_t AggregateCallHash(const AggregateCall& call) {
  size_t h = static_cast<size_t>(call.kind) * 0x517cc1b727220a95ULL;
  if (call.arg != nullptr) h ^= ExprHash(*call.arg);
  return h;
}

uint64_t StableAggregateCallHash(const AggregateCall& call) {
  uint64_t h = Mix64(static_cast<uint64_t>(call.kind) + 0xa66);
  if (call.arg != nullptr) h = HashCombine(h, StableExprHash(*call.arg));
  return h;
}

}  // namespace qtf
