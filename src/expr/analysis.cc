#include "expr/analysis.h"

#include <algorithm>

#include "common/check.h"
#include "common/hash.h"

namespace qtf {

void CollectColumns(const Expr& expr, ColumnSet* out) {
  if (expr.kind() == ExprKind::kColumnRef) {
    out->insert(static_cast<const ColumnRefExpr&>(expr).id());
    return;
  }
  for (const ExprPtr& child : expr.children()) {
    CollectColumns(*child, out);
  }
}

ColumnSet ColumnsOf(const Expr& expr) {
  ColumnSet out;
  CollectColumns(expr, &out);
  return out;
}

bool ReferencesOnly(const Expr& expr, const ColumnSet& allowed) {
  ColumnSet cols = ColumnsOf(expr);
  for (ColumnId id : cols) {
    if (allowed.count(id) == 0) return false;
  }
  return true;
}

bool ReferencesAny(const Expr& expr, const ColumnSet& cols) {
  ColumnSet referenced = ColumnsOf(expr);
  for (ColumnId id : referenced) {
    if (cols.count(id) > 0) return true;
  }
  return false;
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  if (expr == nullptr) return out;
  if (expr->kind() == ExprKind::kAnd) {
    for (const ExprPtr& child : expr->children()) {
      std::vector<ExprPtr> sub = SplitConjuncts(child);
      out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
  }
  out.push_back(expr);
  return out;
}

ExprPtr MakeConjunction(const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return nullptr;
  // Canonical order: different rule-derivation paths that assemble the same
  // conjunct set must produce structurally identical predicates, or memo
  // deduplication breaks down and the search space explodes.
  std::vector<ExprPtr> sorted = conjuncts;
  std::sort(sorted.begin(), sorted.end(),
            [](const ExprPtr& a, const ExprPtr& b) {
              size_t ha = ExprHash(*a), hb = ExprHash(*b);
              if (ha != hb) return ha < hb;
              return a->ToString(nullptr) < b->ToString(nullptr);
            });
  ExprPtr result = sorted[0];
  for (size_t i = 1; i < sorted.size(); ++i) {
    result = And(result, sorted[i]);
  }
  return result;
}

namespace {

/// True iff `expr` is guaranteed NULL on rows where all columns in `cols`
/// are NULL. Holds for any NULL-strict operator tree that touches at least
/// one column of `cols` and no operator that can absorb NULL (AND/OR/NOT
/// handled by the caller; IS NULL is not strict).
bool StrictNullWhenAllNull(const Expr& expr, const ColumnSet& cols) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef:
      return cols.count(static_cast<const ColumnRefExpr&>(expr).id()) > 0;
    case ExprKind::kConstant:
      return false;
    case ExprKind::kArithmetic:
      return StrictNullWhenAllNull(*expr.children()[0], cols) ||
             StrictNullWhenAllNull(*expr.children()[1], cols);
    case ExprKind::kComparison:
      return StrictNullWhenAllNull(*expr.children()[0], cols) ||
             StrictNullWhenAllNull(*expr.children()[1], cols);
    default:
      // AND/OR/NOT/IS NULL can produce non-NULL from NULL inputs; be
      // conservative.
      return false;
  }
}

}  // namespace

bool RejectsAllNull(const Expr& expr, const ColumnSet& cols) {
  switch (expr.kind()) {
    case ExprKind::kComparison:
      // A comparison yields NULL (hence not TRUE) if either side is NULL.
      return StrictNullWhenAllNull(*expr.children()[0], cols) ||
             StrictNullWhenAllNull(*expr.children()[1], cols);
    case ExprKind::kAnd:
      // One non-TRUE conjunct makes the conjunction non-TRUE.
      return RejectsAllNull(*expr.children()[0], cols) ||
             RejectsAllNull(*expr.children()[1], cols);
    case ExprKind::kOr:
      // Both branches must be non-TRUE.
      return RejectsAllNull(*expr.children()[0], cols) &&
             RejectsAllNull(*expr.children()[1], cols);
    case ExprKind::kNot:
      // NOT(x) is non-TRUE iff x is TRUE or NULL; guaranteed when the
      // operand is strict-NULL over cols (NOT NULL = NULL).
      return StrictNullWhenAllNull(*expr.children()[0], cols);
    default:
      return false;
  }
}


ExprPtr SubstituteColumns(const ExprPtr& expr,
                          const std::map<ColumnId, ExprPtr>& replacements) {
  switch (expr->kind()) {
    case ExprKind::kColumnRef: {
      ColumnId id = static_cast<const ColumnRefExpr&>(*expr).id();
      auto it = replacements.find(id);
      return it != replacements.end() ? it->second : expr;
    }
    case ExprKind::kConstant:
      return expr;
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(*expr);
      return Cmp(cmp.op(), SubstituteColumns(cmp.left(), replacements),
                 SubstituteColumns(cmp.right(), replacements));
    }
    case ExprKind::kAnd:
      return And(SubstituteColumns(expr->children()[0], replacements),
                 SubstituteColumns(expr->children()[1], replacements));
    case ExprKind::kOr:
      return Or(SubstituteColumns(expr->children()[0], replacements),
                SubstituteColumns(expr->children()[1], replacements));
    case ExprKind::kNot:
      return Not(SubstituteColumns(expr->children()[0], replacements));
    case ExprKind::kArithmetic: {
      const auto& arith = static_cast<const ArithmeticExpr&>(*expr);
      return Arith(arith.op(),
                   SubstituteColumns(expr->children()[0], replacements),
                   SubstituteColumns(expr->children()[1], replacements));
    }
    case ExprKind::kIsNull:
      return IsNull(SubstituteColumns(expr->children()[0], replacements));
  }
  QTF_CHECK(false) << "unknown expression kind";
  return expr;
}

bool ExprEquals(const Expr& a, const Expr& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case ExprKind::kColumnRef:
      return static_cast<const ColumnRefExpr&>(a).id() ==
             static_cast<const ColumnRefExpr&>(b).id();
    case ExprKind::kConstant: {
      const Value& va = static_cast<const ConstantExpr&>(a).value();
      const Value& vb = static_cast<const ConstantExpr&>(b).value();
      if (va.type() != vb.type()) return false;
      if (va.is_null() != vb.is_null()) return false;
      return va.is_null() || va.Compare(vb) == 0;
    }
    case ExprKind::kComparison:
      if (static_cast<const ComparisonExpr&>(a).op() !=
          static_cast<const ComparisonExpr&>(b).op()) {
        return false;
      }
      break;
    case ExprKind::kArithmetic:
      if (static_cast<const ArithmeticExpr&>(a).op() !=
          static_cast<const ArithmeticExpr&>(b).op()) {
        return false;
      }
      break;
    default:
      break;
  }
  if (a.children().size() != b.children().size()) return false;
  for (size_t i = 0; i < a.children().size(); ++i) {
    if (!ExprEquals(*a.children()[i], *b.children()[i])) return false;
  }
  return true;
}

size_t ExprHash(const Expr& expr) {
  size_t h = static_cast<size_t>(expr.kind()) * 0x9e3779b97f4a7c15ULL;
  switch (expr.kind()) {
    case ExprKind::kColumnRef:
      h ^= static_cast<size_t>(static_cast<const ColumnRefExpr&>(expr).id()) +
           0x1234567;
      break;
    case ExprKind::kConstant:
      h ^= static_cast<const ConstantExpr&>(expr).value().Hash();
      break;
    case ExprKind::kComparison:
      h ^= static_cast<size_t>(static_cast<const ComparisonExpr&>(expr).op())
           << 8;
      break;
    case ExprKind::kArithmetic:
      h ^= static_cast<size_t>(static_cast<const ArithmeticExpr&>(expr).op())
           << 16;
      break;
    default:
      break;
  }
  for (const ExprPtr& child : expr.children()) {
    h = h * 1099511628211ULL + ExprHash(*child);
  }
  return h;
}

uint64_t StableExprHash(const Expr& expr) {
  uint64_t h = Mix64(static_cast<uint64_t>(expr.kind()) + 0xe1234);
  switch (expr.kind()) {
    case ExprKind::kColumnRef:
      h = HashCombine(
          h, static_cast<uint64_t>(static_cast<const ColumnRefExpr&>(expr).id()));
      break;
    case ExprKind::kConstant:
      h = HashCombine(h,
                      static_cast<const ConstantExpr&>(expr).value().StableHash());
      break;
    case ExprKind::kComparison:
      h = HashCombine(h, static_cast<uint64_t>(
                             static_cast<const ComparisonExpr&>(expr).op()));
      break;
    case ExprKind::kArithmetic:
      h = HashCombine(h, static_cast<uint64_t>(
                             static_cast<const ArithmeticExpr&>(expr).op()));
      break;
    default:
      break;
  }
  for (const ExprPtr& child : expr.children()) {
    h = HashCombine(h, StableExprHash(*child));
  }
  return h;
}

}  // namespace qtf
