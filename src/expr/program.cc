#include "expr/program.h"

namespace qtf {

uint64_t LayoutFingerprint(const std::vector<ColumnId>& layout) {
  uint64_t h = Mix64(static_cast<uint64_t>(layout.size()));
  for (ColumnId id : layout) {
    h = HashCombine(h, static_cast<uint64_t>(static_cast<uint32_t>(id)));
  }
  return h;
}

// ---- compilation ----------------------------------------------------------

Result<std::shared_ptr<const EvalProgram>> EvalProgram::Compile(
    const ExprPtr& expr, const ColumnBindings& bindings) {
  QTF_CHECK(expr != nullptr);
  // make_shared needs a public ctor; std::shared_ptr(new ...) is fine from
  // inside the class.
  std::shared_ptr<EvalProgram> program(new EvalProgram());
  program->root_ = expr;
  int depth = 0;
  QTF_RETURN_IF_ERROR(program->CompileNode(*expr, bindings, &depth));
  QTF_CHECK(depth == 1) << "postfix compile left " << depth << " operands";
  return std::shared_ptr<const EvalProgram>(std::move(program));
}

Status EvalProgram::CompileNode(const Expr& expr,
                                const ColumnBindings& bindings,
                                int* stack_depth) {
  auto push = [&](int delta) {
    *stack_depth += delta;
    if (*stack_depth > max_stack_) max_stack_ = *stack_depth;
  };
  auto new_slot = [&](ValueType t) {
    slot_types_.push_back(t);
    return static_cast<int>(slot_types_.size()) - 1;
  };

  switch (expr.kind()) {
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      Instr instr;
      instr.op = OpCode::kLoadColumn;
      instr.col_pos = bindings.PositionOf(ref.id());
      instrs_.push_back(instr);
      push(+1);
      return Status::OK();
    }
    case ExprKind::kConstant: {
      const auto& c = static_cast<const ConstantExpr&>(expr);
      Instr instr;
      instr.op = OpCode::kLoadConst;
      instr.constant = &c.value();
      instr.out_type = c.value().type();
      instr.slot = new_slot(instr.out_type);
      instrs_.push_back(instr);
      push(+1);
      return Status::OK();
    }
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(expr);
      QTF_RETURN_IF_ERROR(CompileNode(*cmp.left(), bindings, stack_depth));
      QTF_RETURN_IF_ERROR(CompileNode(*cmp.right(), bindings, stack_depth));
      Instr instr;
      instr.op = OpCode::kCompare;
      instr.cmp = cmp.op();
      instr.lhs_type = cmp.left()->type();
      instr.rhs_type = cmp.right()->type();
      instr.out_type = ValueType::kBool;
      instr.slot = new_slot(ValueType::kBool);
      instrs_.push_back(instr);
      push(-1);
      return Status::OK();
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      QTF_RETURN_IF_ERROR(
          CompileNode(*expr.children()[0], bindings, stack_depth));
      QTF_RETURN_IF_ERROR(
          CompileNode(*expr.children()[1], bindings, stack_depth));
      Instr instr;
      instr.op = expr.kind() == ExprKind::kAnd ? OpCode::kAnd : OpCode::kOr;
      instr.out_type = ValueType::kBool;
      instr.slot = new_slot(ValueType::kBool);
      instrs_.push_back(instr);
      push(-1);
      return Status::OK();
    }
    case ExprKind::kNot:
    case ExprKind::kIsNull: {
      QTF_RETURN_IF_ERROR(
          CompileNode(*expr.children()[0], bindings, stack_depth));
      Instr instr;
      instr.op =
          expr.kind() == ExprKind::kNot ? OpCode::kNot : OpCode::kIsNull;
      instr.out_type = ValueType::kBool;
      instr.slot = new_slot(ValueType::kBool);
      instrs_.push_back(instr);
      // pop 1, push 1: depth unchanged.
      return Status::OK();
    }
    case ExprKind::kArithmetic: {
      const auto& arith = static_cast<const ArithmeticExpr&>(expr);
      QTF_RETURN_IF_ERROR(
          CompileNode(*expr.children()[0], bindings, stack_depth));
      QTF_RETURN_IF_ERROR(
          CompileNode(*expr.children()[1], bindings, stack_depth));
      Instr instr;
      instr.op = OpCode::kArith;
      instr.arith = arith.op();
      instr.out_type = arith.type();
      instr.lhs_type = expr.children()[0]->type();
      instr.rhs_type = expr.children()[1]->type();
      instr.slot = new_slot(instr.out_type);
      instrs_.push_back(instr);
      push(-1);
      return Status::OK();
    }
  }
  return Status::Internal("unknown expression kind in EvalProgram::Compile");
}

// ---- kernels --------------------------------------------------------------

namespace {

/// Fills `out` with `n` copies of `v` (strings borrow v's payload, which the
/// program's pinned expression tree keeps alive).
void FillConstant(const Value& v, int n, ColumnVector* out) {
  out->ResizeForWrite(n);
  if (v.is_null()) {
    uint8_t* nulls = out->nulls();
    for (int i = 0; i < n; ++i) nulls[i] = 1;
    return;
  }
  switch (v.type()) {
    case ValueType::kInt64: {
      int64_t* lane = out->ints();
      int64_t x = v.int64();
      for (int i = 0; i < n; ++i) lane[i] = x;
      break;
    }
    case ValueType::kDouble: {
      double* lane = out->doubles();
      double x = v.dbl();
      for (int i = 0; i < n; ++i) lane[i] = x;
      break;
    }
    case ValueType::kString: {
      const std::string** lane = out->strings();
      const std::string* x = &v.str();
      for (int i = 0; i < n; ++i) lane[i] = x;
      break;
    }
    case ValueType::kBool: {
      int64_t* lane = out->ints();
      int64_t x = v.boolean() ? 1 : 0;
      for (int i = 0; i < n; ++i) lane[i] = x;
      break;
    }
  }
}

/// NULL-strict comparison loop: the op functor is resolved before the loop,
/// so the hot path is mask checks + one typed compare per row.
template <typename GetL, typename GetR, typename Op>
void CmpLoop(int n, const uint8_t* ln, const uint8_t* rn, GetL gl, GetR gr,
             Op op, ColumnVector* out) {
  out->ResizeForWrite(n);
  uint8_t* on = out->nulls();
  int64_t* ov = out->ints();
  for (int i = 0; i < n; ++i) {
    if (ln[i] != 0 || rn[i] != 0) {
      on[i] = 1;
      ov[i] = 0;
    } else {
      ov[i] = op(gl(i), gr(i)) ? 1 : 0;
    }
  }
}

template <typename GetL, typename GetR>
void CmpDispatchOp(CompareOp cmp, int n, const uint8_t* ln, const uint8_t* rn,
                   GetL gl, GetR gr, ColumnVector* out) {
  switch (cmp) {
    case CompareOp::kEq:
      CmpLoop(n, ln, rn, gl, gr,
              [](const auto& a, const auto& b) { return a == b; }, out);
      break;
    case CompareOp::kNe:
      CmpLoop(n, ln, rn, gl, gr,
              [](const auto& a, const auto& b) { return a != b; }, out);
      break;
    case CompareOp::kLt:
      CmpLoop(n, ln, rn, gl, gr,
              [](const auto& a, const auto& b) { return a < b; }, out);
      break;
    case CompareOp::kLe:
      CmpLoop(n, ln, rn, gl, gr,
              [](const auto& a, const auto& b) { return a <= b; }, out);
      break;
    case CompareOp::kGt:
      CmpLoop(n, ln, rn, gl, gr,
              [](const auto& a, const auto& b) { return a > b; }, out);
      break;
    case CompareOp::kGe:
      CmpLoop(n, ln, rn, gl, gr,
              [](const auto& a, const auto& b) { return a >= b; }, out);
      break;
  }
}

bool IsNumeric(ValueType t) {
  return t == ValueType::kInt64 || t == ValueType::kDouble;
}

/// Typed comparison over two columns, mirroring eval.cc's CompareValues:
/// same-type compares use the native lane; int64/double cross-compares
/// promote to double.
void CompareColumns(CompareOp cmp, ValueType lt, ValueType rt, int n,
                    const ColumnVector& lhs, const ColumnVector& rhs,
                    ColumnVector* out) {
  const uint8_t* ln = lhs.nulls();
  const uint8_t* rn = rhs.nulls();
  if (lt == ValueType::kString) {
    QTF_CHECK(rt == ValueType::kString) << "incomparable types";
    const std::string* const* a = lhs.strings();
    const std::string* const* b = rhs.strings();
    CmpDispatchOp(
        cmp, n, ln, rn,
        [a](int i) -> const std::string& { return *a[i]; },
        [b](int i) -> const std::string& { return *b[i]; }, out);
    return;
  }
  if (lt == ValueType::kDouble || rt == ValueType::kDouble) {
    QTF_CHECK(IsNumeric(lt) && IsNumeric(rt)) << "incomparable types";
    if (lt == ValueType::kDouble && rt == ValueType::kDouble) {
      const double* a = lhs.doubles();
      const double* b = rhs.doubles();
      CmpDispatchOp(
          cmp, n, ln, rn, [a](int i) { return a[i]; },
          [b](int i) { return b[i]; }, out);
    } else if (lt == ValueType::kDouble) {
      const double* a = lhs.doubles();
      const int64_t* b = rhs.ints();
      CmpDispatchOp(
          cmp, n, ln, rn, [a](int i) { return a[i]; },
          [b](int i) { return static_cast<double>(b[i]); }, out);
    } else {
      const int64_t* a = lhs.ints();
      const double* b = rhs.doubles();
      CmpDispatchOp(
          cmp, n, ln, rn, [a](int i) { return static_cast<double>(a[i]); },
          [b](int i) { return b[i]; }, out);
    }
    return;
  }
  // Same-type int64/int64 or bool/bool: both live in the int lane.
  QTF_CHECK(lt == rt) << "incomparable types";
  const int64_t* a = lhs.ints();
  const int64_t* b = rhs.ints();
  CmpDispatchOp(
      cmp, n, ln, rn, [a](int i) { return a[i]; },
      [b](int i) { return b[i]; }, out);
}

/// NULL-strict arithmetic; division by zero yields NULL (same documented
/// semantics as the row interpreter).
void ArithColumns(ArithOp op, ValueType out_type, int n,
                  const ColumnVector& lhs, const ColumnVector& rhs,
                  ColumnVector* out) {
  out->ResizeForWrite(n);
  const uint8_t* ln = lhs.nulls();
  const uint8_t* rn = rhs.nulls();
  uint8_t* on = out->nulls();
  if (out_type == ValueType::kInt64) {
    // The planner types an arithmetic node kInt64 only when both inputs are
    // int64 (mirrors eval.cc using .int64() directly).
    const int64_t* a = lhs.ints();
    const int64_t* b = rhs.ints();
    int64_t* ov = out->ints();
    auto loop = [&](auto fn) {
      for (int i = 0; i < n; ++i) {
        if (ln[i] != 0 || rn[i] != 0) {
          on[i] = 1;
          ov[i] = 0;
        } else {
          ov[i] = fn(a[i], b[i]);
        }
      }
    };
    switch (op) {
      case ArithOp::kAdd:
        loop([](int64_t x, int64_t y) { return x + y; });
        break;
      case ArithOp::kSub:
        loop([](int64_t x, int64_t y) { return x - y; });
        break;
      case ArithOp::kMul:
        loop([](int64_t x, int64_t y) { return x * y; });
        break;
      case ArithOp::kDiv:
        for (int i = 0; i < n; ++i) {
          if (ln[i] != 0 || rn[i] != 0 || b[i] == 0) {
            on[i] = 1;
            ov[i] = 0;
          } else {
            ov[i] = a[i] / b[i];
          }
        }
        break;
    }
    return;
  }
  // Double result: operands may be int64 or double (Value::AsDouble view).
  auto lval = [&](int i) { return lhs.AsDouble(i); };
  auto rval = [&](int i) { return rhs.AsDouble(i); };
  double* ov = out->doubles();
  auto loop = [&](auto fn) {
    for (int i = 0; i < n; ++i) {
      if (ln[i] != 0 || rn[i] != 0) {
        on[i] = 1;
        ov[i] = 0.0;
      } else {
        ov[i] = fn(lval(i), rval(i));
      }
    }
  };
  switch (op) {
    case ArithOp::kAdd:
      loop([](double x, double y) { return x + y; });
      break;
    case ArithOp::kSub:
      loop([](double x, double y) { return x - y; });
      break;
    case ArithOp::kMul:
      loop([](double x, double y) { return x * y; });
      break;
    case ArithOp::kDiv:
      for (int i = 0; i < n; ++i) {
        if (ln[i] != 0 || rn[i] != 0 || rval(i) == 0.0) {
          on[i] = 1;
          ov[i] = 0.0;
        } else {
          ov[i] = lval(i) / rval(i);
        }
      }
      break;
  }
}

/// Kleene AND over bool columns: FALSE dominates NULL.
void AndColumns(int n, const ColumnVector& lhs, const ColumnVector& rhs,
                ColumnVector* out) {
  out->ResizeForWrite(n);
  const uint8_t* ln = lhs.nulls();
  const uint8_t* rn = rhs.nulls();
  const int64_t* a = lhs.ints();
  const int64_t* b = rhs.ints();
  uint8_t* on = out->nulls();
  int64_t* ov = out->ints();
  for (int i = 0; i < n; ++i) {
    bool lf = ln[i] == 0 && a[i] == 0;  // definitely false
    bool rf = rn[i] == 0 && b[i] == 0;
    if (lf || rf) {
      ov[i] = 0;
    } else if (ln[i] != 0 || rn[i] != 0) {
      on[i] = 1;
      ov[i] = 0;
    } else {
      ov[i] = 1;
    }
  }
}

/// Kleene OR over bool columns: TRUE dominates NULL.
void OrColumns(int n, const ColumnVector& lhs, const ColumnVector& rhs,
               ColumnVector* out) {
  out->ResizeForWrite(n);
  const uint8_t* ln = lhs.nulls();
  const uint8_t* rn = rhs.nulls();
  const int64_t* a = lhs.ints();
  const int64_t* b = rhs.ints();
  uint8_t* on = out->nulls();
  int64_t* ov = out->ints();
  for (int i = 0; i < n; ++i) {
    bool lt = ln[i] == 0 && a[i] != 0;  // definitely true
    bool rt = rn[i] == 0 && b[i] != 0;
    if (lt || rt) {
      ov[i] = 1;
    } else if (ln[i] != 0 || rn[i] != 0) {
      on[i] = 1;
      ov[i] = 0;
    } else {
      ov[i] = 0;
    }
  }
}

void NotColumn(int n, const ColumnVector& in, ColumnVector* out) {
  out->ResizeForWrite(n);
  const uint8_t* xn = in.nulls();
  const int64_t* x = in.ints();
  uint8_t* on = out->nulls();
  int64_t* ov = out->ints();
  for (int i = 0; i < n; ++i) {
    if (xn[i] != 0) {
      on[i] = 1;
      ov[i] = 0;
    } else {
      ov[i] = x[i] == 0 ? 1 : 0;
    }
  }
}

void IsNullColumn(int n, const ColumnVector& in, ColumnVector* out) {
  out->ResizeForWrite(n);
  const uint8_t* xn = in.nulls();
  int64_t* ov = out->ints();
  for (int i = 0; i < n; ++i) ov[i] = xn[i] != 0 ? 1 : 0;
}

}  // namespace

// ---- execution ------------------------------------------------------------

Result<const ColumnVector*> EvalProgram::Run(const Batch& input,
                                             EvalScratch* scratch) const {
  QTF_CHECK(scratch->slots_.size() == slot_types_.size())
      << "scratch not prepared for this program";
  const int n = input.num_rows();
  std::vector<const ColumnVector*>& stack = scratch->stack_;
  int sp = 0;
  for (const Instr& instr : instrs_) {
    switch (instr.op) {
      case OpCode::kLoadColumn:
        stack[static_cast<size_t>(sp++)] = &input.col(instr.col_pos);
        break;
      case OpCode::kLoadConst: {
        ColumnVector* out =
            &scratch->slots_[static_cast<size_t>(instr.slot)];
        FillConstant(*instr.constant, n, out);
        stack[static_cast<size_t>(sp++)] = out;
        break;
      }
      case OpCode::kCompare: {
        const ColumnVector* rhs = stack[static_cast<size_t>(--sp)];
        const ColumnVector* lhs = stack[static_cast<size_t>(--sp)];
        ColumnVector* out =
            &scratch->slots_[static_cast<size_t>(instr.slot)];
        CompareColumns(instr.cmp, instr.lhs_type, instr.rhs_type, n, *lhs,
                       *rhs, out);
        stack[static_cast<size_t>(sp++)] = out;
        break;
      }
      case OpCode::kAnd:
      case OpCode::kOr: {
        const ColumnVector* rhs = stack[static_cast<size_t>(--sp)];
        const ColumnVector* lhs = stack[static_cast<size_t>(--sp)];
        ColumnVector* out =
            &scratch->slots_[static_cast<size_t>(instr.slot)];
        if (instr.op == OpCode::kAnd) {
          AndColumns(n, *lhs, *rhs, out);
        } else {
          OrColumns(n, *lhs, *rhs, out);
        }
        stack[static_cast<size_t>(sp++)] = out;
        break;
      }
      case OpCode::kNot: {
        const ColumnVector* in = stack[static_cast<size_t>(--sp)];
        ColumnVector* out =
            &scratch->slots_[static_cast<size_t>(instr.slot)];
        NotColumn(n, *in, out);
        stack[static_cast<size_t>(sp++)] = out;
        break;
      }
      case OpCode::kIsNull: {
        const ColumnVector* in = stack[static_cast<size_t>(--sp)];
        ColumnVector* out =
            &scratch->slots_[static_cast<size_t>(instr.slot)];
        IsNullColumn(n, *in, out);
        stack[static_cast<size_t>(sp++)] = out;
        break;
      }
      case OpCode::kArith: {
        const ColumnVector* rhs = stack[static_cast<size_t>(--sp)];
        const ColumnVector* lhs = stack[static_cast<size_t>(--sp)];
        ColumnVector* out =
            &scratch->slots_[static_cast<size_t>(instr.slot)];
        ArithColumns(instr.arith, instr.out_type, n, *lhs, *rhs, out);
        stack[static_cast<size_t>(sp++)] = out;
        break;
      }
    }
  }
  QTF_CHECK(sp == 1) << "program finished with " << sp << " operands";
  return stack[0];
}

// ---- cache ----------------------------------------------------------------

Result<std::shared_ptr<const EvalProgram>> EvalProgramCache::GetOrCompile(
    const ExprPtr& expr, const ColumnBindings& bindings,
    uint64_t layout_fingerprint) {
  Key key{expr.get(), layout_fingerprint};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      if (hits_ != nullptr) hits_->Increment();
      return it->second;
    }
  }
  // Compile outside the lock: compilation is pure and losing a race only
  // costs a duplicate compile, never an inconsistent entry.
  QTF_ASSIGN_OR_RETURN(std::shared_ptr<const EvalProgram> program,
                       EvalProgram::Compile(expr, bindings));
  std::lock_guard<std::mutex> lock(mu_);
  if (misses_ != nullptr) misses_->Increment();
  auto it = map_.find(key);
  if (it != map_.end()) return it->second;  // racer won; keep theirs
  if (map_.size() >= kMaxEntries) map_.clear();
  map_.emplace(key, program);
  return program;
}

}  // namespace qtf
