#ifndef QTF_EXPR_ANALYSIS_H_
#define QTF_EXPR_ANALYSIS_H_

#include <map>
#include <set>
#include <vector>

#include "expr/expr.h"

namespace qtf {

/// Set of column ids; used throughout the optimizer for property reasoning.
using ColumnSet = std::set<ColumnId>;

/// Adds every column referenced by `expr` to `out`.
void CollectColumns(const Expr& expr, ColumnSet* out);

/// Convenience wrapper returning the referenced-column set.
ColumnSet ColumnsOf(const Expr& expr);

/// True iff every column referenced by `expr` is contained in `allowed`.
bool ReferencesOnly(const Expr& expr, const ColumnSet& allowed);

/// True iff `expr` references at least one column in `cols`.
bool ReferencesAny(const Expr& expr, const ColumnSet& cols);

/// Splits a predicate into its top-level conjuncts
/// ((a AND b) AND c -> [a, b, c]).
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr);

/// Rebuilds a conjunction from `conjuncts`; returns nullptr for an empty
/// list (meaning TRUE).
ExprPtr MakeConjunction(const std::vector<ExprPtr>& conjuncts);

/// Null-rejection test used by outer-join simplification (LojToJoin and the
/// join/outer-join associativity rules).
///
/// Returns true iff `expr` is guaranteed to evaluate to something other than
/// TRUE on any row in which *all* columns of `cols` are NULL — i.e. the
/// predicate rejects the null-extended rows an outer join produces. The
/// analysis is conservative (may return false for predicates that do
/// reject).
bool RejectsAllNull(const Expr& expr, const ColumnSet& cols);

/// Rewrites `expr`, replacing every reference to a column in `replacements`
/// with the mapped expression. Unmapped references are kept. Used by rules
/// that move predicates across projections/unions.
ExprPtr SubstituteColumns(const ExprPtr& expr,
                          const std::map<ColumnId, ExprPtr>& replacements);

/// Structural equality of expressions (same shape, ops, column ids and
/// constants). Used for plan/tree comparison and memo deduplication.
bool ExprEquals(const Expr& a, const Expr& b);

/// Structural hash consistent with ExprEquals. Built on std::hash via
/// Value::Hash, so values are standard-library-specific. This hash defines
/// MakeConjunction's canonical conjunct order; keep using it there.
size_t ExprHash(const Expr& expr);

/// Platform-stable structural hash consistent with ExprEquals (explicit
/// mixing, Value::StableHash for constants). Feeds LogicalOp::LocalHash and
/// TreeFingerprint so cache keys and the golden fingerprint tests don't
/// depend on the standard library (docs/architecture.md).
uint64_t StableExprHash(const Expr& expr);

}  // namespace qtf

#endif  // QTF_EXPR_ANALYSIS_H_
