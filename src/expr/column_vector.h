#ifndef QTF_EXPR_COLUMN_VECTOR_H_
#define QTF_EXPR_COLUMN_VECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/hash.h"
#include "expr/expr.h"
#include "types/value.h"

namespace qtf {

/// One column of a Batch: a typed value lane plus a null mask, both
/// arena-backed. The unit vectorized expression evaluation and the batched
/// executor operate on.
///
/// Lane layout by type:
///   * kInt64 and kBool share the int64 lane (bools stored as 0/1);
///   * kDouble uses the double lane;
///   * kString stores `const std::string*` — *borrowed* pointers into
///     storage that outlives the batch (base-table values, expression
///     constants, or strings arena-allocated by the producer). This is the
///     columnar engine's cheap string representation: gathers and joins
///     move 8-byte pointers, never copy characters.
///
/// Value lanes under a set null bit hold an unspecified (but initialized)
/// value; every consumer checks the mask first.
class ColumnVector {
 public:
  ColumnVector(ValueType type, Arena* arena)
      : type_(type),
        nulls_(MakeArenaVector<uint8_t>(arena)),
        ints_(MakeArenaVector<int64_t>(arena)),
        doubles_(MakeArenaVector<double>(arena)),
        strings_(MakeArenaVector<const std::string*>(arena)) {}

  ColumnVector(ColumnVector&&) = default;
  ColumnVector& operator=(ColumnVector&&) = default;
  ColumnVector(const ColumnVector&) = delete;
  ColumnVector& operator=(const ColumnVector&) = delete;

  ValueType type() const { return type_; }
  int size() const { return static_cast<int>(nulls_.size()); }

  void Clear() {
    nulls_.clear();
    ints_.clear();
    doubles_.clear();
    strings_.clear();
  }

  void Reserve(int n) {
    nulls_.reserve(static_cast<size_t>(n));
    switch (LaneKind()) {
      case Lane::kInt:
        ints_.reserve(static_cast<size_t>(n));
        break;
      case Lane::kDouble:
        doubles_.reserve(static_cast<size_t>(n));
        break;
      case Lane::kString:
        strings_.reserve(static_cast<size_t>(n));
        break;
    }
  }

  /// Sizes the column to n rows for bulk kernel writes (lanes
  /// uninitialized, null mask zeroed).
  void ResizeForWrite(int n) {
    nulls_.assign(static_cast<size_t>(n), 0);
    switch (LaneKind()) {
      case Lane::kInt:
        ints_.resize(static_cast<size_t>(n));
        break;
      case Lane::kDouble:
        doubles_.resize(static_cast<size_t>(n));
        break;
      case Lane::kString:
        strings_.resize(static_cast<size_t>(n));
        break;
    }
  }

  bool IsNull(int i) const { return nulls_[static_cast<size_t>(i)] != 0; }

  // Raw lanes for kernels.
  uint8_t* nulls() { return nulls_.data(); }
  const uint8_t* nulls() const { return nulls_.data(); }
  int64_t* ints() { return ints_.data(); }
  const int64_t* ints() const { return ints_.data(); }
  double* doubles() { return doubles_.data(); }
  const double* doubles() const { return doubles_.data(); }
  const std::string** strings() { return strings_.data(); }
  const std::string* const* strings() const { return strings_.data(); }

  /// Numeric view of cell i (int64 or double lane), mirroring
  /// Value::AsDouble. Cell must be non-null.
  double AsDouble(int i) const {
    size_t idx = static_cast<size_t>(i);
    return type_ == ValueType::kDouble ? doubles_[idx]
                                       : static_cast<double>(ints_[idx]);
  }

  // ---- appends -----------------------------------------------------------

  void AppendNull() {
    nulls_.push_back(1);
    PushDefaultLane();
  }
  void AppendInt(int64_t v) {
    nulls_.push_back(0);
    ints_.push_back(v);
  }
  void AppendDouble(double v) {
    nulls_.push_back(0);
    doubles_.push_back(v);
  }
  void AppendBool(bool v) {
    nulls_.push_back(0);
    ints_.push_back(v ? 1 : 0);
  }
  /// `s` must outlive the batch (borrowed; see class comment).
  void AppendString(const std::string* s) {
    nulls_.push_back(0);
    strings_.push_back(s);
  }

  /// Boundary conversion from a Value. For strings the pointer borrows
  /// `v`'s storage — the Value must outlive the batch (base-table rows and
  /// expression constants qualify; for transient Values use
  /// AppendValueCopy).
  void AppendValue(const Value& v);

  /// Like AppendValue but arena-copies string payloads, for Values that die
  /// before the batch (e.g. aggregate extremes).
  void AppendValueCopy(const Value& v, Arena* arena);

  /// Gather: appends src's cell i (same type).
  void AppendFrom(const ColumnVector& src, int i);

  /// Bulk copy of src[start, start+count): one lane memcpy instead of
  /// per-cell dispatch. The scan/pass-through hot path.
  void AppendRange(const ColumnVector& src, int64_t start, int count);

  /// Bulk gather of src rows sel[0..count): the filter/join hot path.
  void AppendGather(const ColumnVector& src, const int32_t* sel, int count);

  // ---- cell operations ---------------------------------------------------

  /// Materializes cell i as a Value (copies string payloads).
  Value ToValue(int i) const;

  /// Hash consistent with CellEquals: NULL hashes to a fixed sentinel
  /// (NULL == NULL for grouping/distinct), -0.0 normalized to 0.0.
  uint64_t CellHash(int i) const;

  /// Grouping equality: NULL == NULL is true. Types must match.
  bool CellEquals(int i, const ColumnVector& other, int j) const;

  /// Total order matching Value::Compare: NULL sorts first.
  int CellCompare(int i, const ColumnVector& other, int j) const;

 private:
  enum class Lane { kInt, kDouble, kString };

  Lane LaneKind() const {
    switch (type_) {
      case ValueType::kInt64:
      case ValueType::kBool:
        return Lane::kInt;
      case ValueType::kDouble:
        return Lane::kDouble;
      case ValueType::kString:
        return Lane::kString;
    }
    return Lane::kInt;
  }

  void PushDefaultLane() {
    switch (LaneKind()) {
      case Lane::kInt:
        ints_.push_back(0);
        break;
      case Lane::kDouble:
        doubles_.push_back(0.0);
        break;
      case Lane::kString:
        strings_.push_back(nullptr);
        break;
    }
  }

  ValueType type_;
  ArenaVector<uint8_t> nulls_;
  ArenaVector<int64_t> ints_;
  ArenaVector<double> doubles_;
  ArenaVector<const std::string*> strings_;
};

/// A fixed-capacity chunk of rows in columnar layout: the unit of data flow
/// between batched executor operators (ISSUE: peloton-style Init()/Next()
/// over tuple batches). Column ids give the layout; all columns share the
/// row count.
class Batch {
 public:
  static constexpr int kDefaultCapacity = 1024;

  explicit Batch(Arena* arena) : arena_(arena) {}
  Batch(Batch&&) = default;
  Batch(const Batch&) = delete;
  Batch& operator=(const Batch&) = delete;

  /// (Re)configures the layout; drops existing columns.
  void Configure(const std::vector<ColumnId>& ids,
                 const std::vector<ValueType>& types) {
    QTF_CHECK(ids.size() == types.size());
    ids_ = ids;
    cols_.clear();
    cols_.reserve(ids.size());
    for (ValueType t : types) cols_.emplace_back(t, arena_);
  }

  Arena* arena() const { return arena_; }
  const std::vector<ColumnId>& ids() const { return ids_; }
  int num_cols() const { return static_cast<int>(cols_.size()); }
  ColumnVector& col(int i) { return cols_[static_cast<size_t>(i)]; }
  const ColumnVector& col(int i) const { return cols_[static_cast<size_t>(i)]; }

  int num_rows() const { return rows_; }
  void set_num_rows(int n) { rows_ = n; }

  void Clear() {
    for (ColumnVector& c : cols_) c.Clear();
    rows_ = 0;
  }

  /// Boundary conversion: materializes row i (copies string payloads).
  Row RowAt(int i) const {
    Row row;
    row.reserve(cols_.size());
    for (const ColumnVector& c : cols_) row.push_back(c.ToValue(i));
    return row;
  }

 private:
  Arena* arena_;
  std::vector<ColumnId> ids_;
  std::vector<ColumnVector> cols_;
  int rows_ = 0;
};

}  // namespace qtf

#endif  // QTF_EXPR_COLUMN_VECTOR_H_
