#include "expr/expr.h"

namespace qtf {

const char* CompareOpToSql(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpToSql(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

std::string ColumnRefExpr::ToString(const ColumnNameResolver* resolver) const {
  if (resolver != nullptr) return (*resolver)(id_);
  return "c" + std::to_string(id_);
}

std::string ConstantExpr::ToString(const ColumnNameResolver*) const {
  return value_.ToSqlLiteral();
}

std::string ComparisonExpr::ToString(const ColumnNameResolver* resolver) const {
  return "(" + left()->ToString(resolver) + " " + CompareOpToSql(op_) + " " +
         right()->ToString(resolver) + ")";
}

std::string AndExpr::ToString(const ColumnNameResolver* resolver) const {
  return "(" + children()[0]->ToString(resolver) + " AND " +
         children()[1]->ToString(resolver) + ")";
}

std::string OrExpr::ToString(const ColumnNameResolver* resolver) const {
  return "(" + children()[0]->ToString(resolver) + " OR " +
         children()[1]->ToString(resolver) + ")";
}

std::string NotExpr::ToString(const ColumnNameResolver* resolver) const {
  return "(NOT " + children()[0]->ToString(resolver) + ")";
}

std::string ArithmeticExpr::ToString(const ColumnNameResolver* resolver) const {
  return "(" + children()[0]->ToString(resolver) + " " + ArithOpToSql(op_) +
         " " + children()[1]->ToString(resolver) + ")";
}

std::string IsNullExpr::ToString(const ColumnNameResolver* resolver) const {
  return "(" + children()[0]->ToString(resolver) + " IS NULL)";
}

ExprPtr Col(ColumnId id, ValueType type) {
  return std::make_shared<ColumnRefExpr>(id, type);
}
ExprPtr Lit(Value value) {
  return std::make_shared<ConstantExpr>(std::move(value));
}
ExprPtr LitInt(int64_t v) { return Lit(Value::Int64(v)); }
ExprPtr LitDouble(double v) { return Lit(Value::Double(v)); }
ExprPtr LitString(std::string v) { return Lit(Value::String(std::move(v))); }
ExprPtr Cmp(CompareOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<ComparisonExpr>(op, std::move(left),
                                          std::move(right));
}
ExprPtr Eq(ExprPtr left, ExprPtr right) {
  return Cmp(CompareOp::kEq, std::move(left), std::move(right));
}
ExprPtr And(ExprPtr left, ExprPtr right) {
  return std::make_shared<AndExpr>(std::move(left), std::move(right));
}
ExprPtr Or(ExprPtr left, ExprPtr right) {
  return std::make_shared<OrExpr>(std::move(left), std::move(right));
}
ExprPtr Not(ExprPtr input) {
  return std::make_shared<NotExpr>(std::move(input));
}
ExprPtr Arith(ArithOp op, ExprPtr left, ExprPtr right) {
  // Result is double if either side is double, else int64.
  ValueType type =
      (left->type() == ValueType::kDouble || right->type() == ValueType::kDouble)
          ? ValueType::kDouble
          : ValueType::kInt64;
  return std::make_shared<ArithmeticExpr>(op, std::move(left),
                                          std::move(right), type);
}
ExprPtr IsNull(ExprPtr input) {
  return std::make_shared<IsNullExpr>(std::move(input));
}

}  // namespace qtf
