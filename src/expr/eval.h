#ifndef QTF_EXPR_EVAL_H_
#define QTF_EXPR_EVAL_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "types/value.h"

namespace qtf {

/// Maps ColumnIds to positions within a physical row layout. Built once per
/// operator, then used for every row.
class ColumnBindings {
 public:
  /// `layout[i]` is the ColumnId stored at row position i.
  explicit ColumnBindings(const std::vector<ColumnId>& layout);

  /// Position of `id`; CHECK-fails if the id is not part of the layout
  /// (plans are validated before execution).
  int PositionOf(ColumnId id) const;

  bool Contains(ColumnId id) const { return positions_.count(id) > 0; }

 private:
  std::unordered_map<ColumnId, int> positions_;
};

/// Evaluates `expr` against `row` (laid out per `bindings`) with SQL
/// three-valued logic:
///   * comparisons and arithmetic are NULL-strict;
///   * AND/OR follow Kleene logic; NOT(NULL) = NULL;
///   * IS NULL always yields non-NULL TRUE/FALSE;
///   * division by zero yields NULL (documented engine semantics: generated
///     queries must never abort mid-run, and the choice is identical with
///     and without transformation rules, so correctness comparisons are
///     unaffected).
Result<Value> Eval(const Expr& expr, const ColumnBindings& bindings,
                   const Row& row);

/// True iff `v` is boolean TRUE (i.e. not NULL and true) — the SQL filter
/// acceptance condition.
bool IsTrue(const Value& v);

}  // namespace qtf

#endif  // QTF_EXPR_EVAL_H_
