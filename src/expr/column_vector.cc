#include "expr/column_vector.h"

#include <cstring>

namespace qtf {

void ColumnVector::AppendValue(const Value& v) {
  QTF_CHECK(v.type() == type_)
      << "appending " << ValueTypeToString(v.type()) << " to a "
      << ValueTypeToString(type_) << " column";
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case ValueType::kInt64:
      AppendInt(v.int64());
      break;
    case ValueType::kDouble:
      AppendDouble(v.dbl());
      break;
    case ValueType::kString:
      AppendString(&v.str());
      break;
    case ValueType::kBool:
      AppendBool(v.boolean());
      break;
  }
}

void ColumnVector::AppendValueCopy(const Value& v, Arena* arena) {
  if (type_ == ValueType::kString && !v.is_null()) {
    AppendString(arena->New<std::string>(v.str()));
    return;
  }
  AppendValue(v);
}

void ColumnVector::AppendFrom(const ColumnVector& src, int i) {
  QTF_CHECK(src.type_ == type_);
  size_t idx = static_cast<size_t>(i);
  if (src.nulls_[idx] != 0) {
    AppendNull();
    return;
  }
  nulls_.push_back(0);
  switch (LaneKind()) {
    case Lane::kInt:
      ints_.push_back(src.ints_[idx]);
      break;
    case Lane::kDouble:
      doubles_.push_back(src.doubles_[idx]);
      break;
    case Lane::kString:
      strings_.push_back(src.strings_[idx]);
      break;
  }
}

void ColumnVector::AppendRange(const ColumnVector& src, int64_t start,
                               int count) {
  QTF_CHECK(src.type_ == type_);
  size_t s = static_cast<size_t>(start), n = static_cast<size_t>(count);
  nulls_.insert(nulls_.end(), src.nulls_.begin() + s, src.nulls_.begin() + s + n);
  switch (LaneKind()) {
    case Lane::kInt:
      ints_.insert(ints_.end(), src.ints_.begin() + s, src.ints_.begin() + s + n);
      break;
    case Lane::kDouble:
      doubles_.insert(doubles_.end(), src.doubles_.begin() + s,
                      src.doubles_.begin() + s + n);
      break;
    case Lane::kString:
      strings_.insert(strings_.end(), src.strings_.begin() + s,
                      src.strings_.begin() + s + n);
      break;
  }
}

void ColumnVector::AppendGather(const ColumnVector& src, const int32_t* sel,
                                int count) {
  QTF_CHECK(src.type_ == type_);
  size_t base = nulls_.size(), n = static_cast<size_t>(count);
  nulls_.resize(base + n);
  for (size_t i = 0; i < n; ++i) {
    nulls_[base + i] = src.nulls_[static_cast<size_t>(sel[i])];
  }
  switch (LaneKind()) {
    case Lane::kInt: {
      ints_.resize(base + n);
      for (size_t i = 0; i < n; ++i) {
        ints_[base + i] = src.ints_[static_cast<size_t>(sel[i])];
      }
      break;
    }
    case Lane::kDouble: {
      doubles_.resize(base + n);
      for (size_t i = 0; i < n; ++i) {
        doubles_[base + i] = src.doubles_[static_cast<size_t>(sel[i])];
      }
      break;
    }
    case Lane::kString: {
      strings_.resize(base + n);
      for (size_t i = 0; i < n; ++i) {
        strings_[base + i] = src.strings_[static_cast<size_t>(sel[i])];
      }
      break;
    }
  }
}

Value ColumnVector::ToValue(int i) const {
  size_t idx = static_cast<size_t>(i);
  if (nulls_[idx] != 0) return Value::Null(type_);
  switch (type_) {
    case ValueType::kInt64:
      return Value::Int64(ints_[idx]);
    case ValueType::kDouble:
      return Value::Double(doubles_[idx]);
    case ValueType::kString:
      return Value::String(*strings_[idx]);
    case ValueType::kBool:
      return Value::Bool(ints_[idx] != 0);
  }
  return Value::Null(type_);
}

uint64_t ColumnVector::CellHash(int i) const {
  size_t idx = static_cast<size_t>(i);
  if (nulls_[idx] != 0) return 0x9e3779b97f4a7c15ULL;  // NULL sentinel
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kBool:
      return Mix64(static_cast<uint64_t>(ints_[idx]));
    case ValueType::kDouble: {
      double d = doubles_[idx];
      if (d == 0.0) d = 0.0;  // -0.0 == 0.0 must hash equal
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits);
    }
    case ValueType::kString:
      return Fnv1a(*strings_[idx]);
  }
  return 0;
}

bool ColumnVector::CellEquals(int i, const ColumnVector& other, int j) const {
  QTF_CHECK(type_ == other.type_);
  size_t a = static_cast<size_t>(i), b = static_cast<size_t>(j);
  bool an = nulls_[a] != 0, bn = other.nulls_[b] != 0;
  if (an || bn) return an == bn;  // NULL == NULL for grouping
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kBool:
      return ints_[a] == other.ints_[b];
    case ValueType::kDouble:
      return doubles_[a] == other.doubles_[b];
    case ValueType::kString:
      return *strings_[a] == *other.strings_[b];
  }
  return false;
}

int ColumnVector::CellCompare(int i, const ColumnVector& other, int j) const {
  QTF_CHECK(type_ == other.type_);
  size_t a = static_cast<size_t>(i), b = static_cast<size_t>(j);
  bool an = nulls_[a] != 0, bn = other.nulls_[b] != 0;
  if (an && bn) return 0;
  if (an) return -1;
  if (bn) return 1;
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kBool: {
      int64_t x = ints_[a], y = other.ints_[b];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ValueType::kDouble: {
      double x = doubles_[a], y = other.doubles_[b];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ValueType::kString: {
      int c = strings_[a]->compare(*other.strings_[b]);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
  return 0;
}

}  // namespace qtf
