#ifndef QTF_EXPR_AGGREGATE_H_
#define QTF_EXPR_AGGREGATE_H_

#include <string>

#include "expr/expr.h"

namespace qtf {

/// Aggregate function kinds supported by GroupByAgg.
enum class AggKind {
  kCountStar = 0,  // COUNT(*)
  kCount,          // COUNT(expr), NULLs excluded
  kSum,
  kMin,
  kMax,
  kAvg,
};

const char* AggKindToSql(AggKind kind);

/// One aggregate invocation: function + argument (nullptr for COUNT(*)).
struct AggregateCall {
  AggKind kind = AggKind::kCountStar;
  ExprPtr arg;  // nullptr iff kind == kCountStar.

  /// Result type implied by the function and argument type (COUNT -> INT64,
  /// AVG -> DOUBLE, SUM/MIN/MAX -> argument type).
  ValueType ResultType() const;

  /// "SUM(expr)" rendering.
  std::string ToString(const ColumnNameResolver* resolver) const;
};

/// Structural equality/hash for memo deduplication.
bool AggregateCallEquals(const AggregateCall& a, const AggregateCall& b);
size_t AggregateCallHash(const AggregateCall& call);

/// Platform-stable variant of AggregateCallHash (StableExprHash-based);
/// feeds LogicalOp::LocalHash and TreeFingerprint.
uint64_t StableAggregateCallHash(const AggregateCall& call);

}  // namespace qtf

#endif  // QTF_EXPR_AGGREGATE_H_
