#include "client/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace qtf {
namespace client {

namespace {

#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

Status SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, kSendFlags);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("send(): ") +
                                 std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<ServiceClient>> ServiceClient::Connect(
    const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket(): ") +
                               std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(
        "host must be a numeric IPv4 address, got \"" + host + "\"");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("connect(" + host + ":" +
                               std::to_string(port) + "): " + err);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<ServiceClient>(new ServiceClient(fd));
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<net::Frame> ServiceClient::CallRaw(net::MessageType type,
                                          std::string_view payload) {
  const uint32_t request_id = next_request_id_++;
  QTF_RETURN_NOT_OK(SendAll(fd_, net::EncodeFrame(type, request_id, payload)));

  char buf[64 * 1024];
  for (;;) {
    net::Frame frame;
    QTF_ASSIGN_OR_RETURN(bool got, decoder_.Next(&frame));
    if (got) {
      if (frame.request_id != request_id) {
        // One request in flight per client; anything else is a server bug
        // or a stale frame from a protocol violation.
        return Status::Internal(
            "response for unexpected request id " +
            std::to_string(frame.request_id) + " (expected " +
            std::to_string(request_id) + ")");
      }
      return frame;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      return Status::Unavailable(std::string("recv(): ") +
                                 std::strerror(errno));
    }
    if (n == 0) {
      return Status::Unavailable("connection closed by server");
    }
    decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

Result<service::ServiceResponse> ServiceClient::Call(
    const service::ServiceRequest& request) {
  const net::MessageType type = net::RequestType(request);
  QTF_ASSIGN_OR_RETURN(net::Frame frame,
                       CallRaw(type, net::EncodeRequest(request)));
  if (frame.type == net::MessageType::kError) {
    Status error;
    QTF_RETURN_NOT_OK(net::DecodeError(frame.payload, &error));
    if (error.ok()) {
      return Status::Internal("server sent an error frame carrying OK");
    }
    return error;
  }
  if (frame.type != net::ResponseTypeFor(type)) {
    return Status::Internal(std::string("unexpected response type ") +
                            net::MessageTypeToString(frame.type));
  }
  return net::DecodeResponse(frame.type, frame.payload);
}

Result<service::GenerateResponse> ServiceClient::Generate(
    const service::GenerateRequest& request) {
  QTF_ASSIGN_OR_RETURN(service::ServiceResponse response,
                       Call(service::ServiceRequest(request)));
  return std::get<service::GenerateResponse>(std::move(response));
}

Result<service::OptimizeResponse> ServiceClient::Optimize(
    const service::OptimizeRequest& request) {
  QTF_ASSIGN_OR_RETURN(service::ServiceResponse response,
                       Call(service::ServiceRequest(request)));
  return std::get<service::OptimizeResponse>(std::move(response));
}

Result<service::CompressSuiteResponse> ServiceClient::CompressSuite(
    const service::CompressSuiteRequest& request) {
  QTF_ASSIGN_OR_RETURN(service::ServiceResponse response,
                       Call(service::ServiceRequest(request)));
  return std::get<service::CompressSuiteResponse>(std::move(response));
}

Result<service::CorrectnessResponse> ServiceClient::RunCorrectness(
    const service::CorrectnessRequest& request) {
  QTF_ASSIGN_OR_RETURN(service::ServiceResponse response,
                       Call(service::ServiceRequest(request)));
  return std::get<service::CorrectnessResponse>(std::move(response));
}

Result<service::SqlResponse> ServiceClient::Sql(
    const service::SqlRequest& request) {
  QTF_ASSIGN_OR_RETURN(service::ServiceResponse response,
                       Call(service::ServiceRequest(request)));
  return std::get<service::SqlResponse>(std::move(response));
}

Result<service::LoadRulesResponse> ServiceClient::LoadRules(
    const service::LoadRulesRequest& request) {
  QTF_ASSIGN_OR_RETURN(service::ServiceResponse response,
                       Call(service::ServiceRequest(request)));
  return std::get<service::LoadRulesResponse>(std::move(response));
}

Result<service::ListRulesResponse> ServiceClient::ListRules(
    const service::ListRulesRequest& request) {
  QTF_ASSIGN_OR_RETURN(service::ServiceResponse response,
                       Call(service::ServiceRequest(request)));
  return std::get<service::ListRulesResponse>(std::move(response));
}

Result<service::MetricsResponse> ServiceClient::Metrics(
    const service::MetricsRequest& request) {
  QTF_ASSIGN_OR_RETURN(service::ServiceResponse response,
                       Call(service::ServiceRequest(request)));
  return std::get<service::MetricsResponse>(std::move(response));
}

}  // namespace client
}  // namespace qtf
