// qtfctl — command-line client for a running qtfd.
//
//   qtfctl [--host 127.0.0.1] [--port 7433] COMMAND
//
// Commands:
//   smoke     generate -> optimize -> compress -> sql -> metrics against
//             the server, verifying each response and that the server
//             counted the requests (qtf.service.requests > 0). Exit 0 iff
//             all pass. This is what the CI serving job runs.
//   sql SQL   parse, bind and (per --mode) optimize or correctness-test a
//             SQL statement on the server:
//               qtfctl sql "SELECT l_orderkey FROM lineitem" --mode optimize
//             --mode parse|optimize|correctness (default parse).
//   metrics   print the server's metrics snapshot (JSON).
//   load-rules FILE
//             compile the .qtr rule specs in FILE (src/ruledsl/) and
//             register them into the server's resident registry. With
//             --dry-run, compile and validate only. Prints the assigned
//             ids and names; compile errors come back with their
//             line:column diagnostics.
//   rules     list the server's rule registry: id, name, type, origin
//             (builtin|dsl) and the rendered match pattern.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "client/client.h"

namespace {

int Fail(const char* what, const qtf::Status& status) {
  std::fprintf(stderr, "qtfctl: %s: %s\n", what, status.ToString().c_str());
  return 1;
}

/// Pulls the integer value of `"name":` out of the metrics JSON; -1 when
/// the metric is absent.
long MetricValue(const std::string& json, const std::string& name) {
  const std::string needle = "\"" + name + "\":";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return -1;
  return std::strtol(json.c_str() + at + needle.size(), nullptr, 10);
}

int RunSmoke(qtf::client::ServiceClient* client) {
  // Generate: one query for the first logical rule.
  qtf::service::GenerateRequest generate;
  generate.targets = {0};
  generate.seed = 7;
  auto generated = client->Generate(generate);
  if (!generated.ok()) return Fail("generate", generated.status());
  if (!generated.value().success || generated.value().sql.empty()) {
    std::fprintf(stderr, "qtfctl: generate produced no query\n");
    return 1;
  }
  std::printf("generate: ok (%d operators, cost %.3f)\n",
              generated.value().operator_count, generated.value().cost);

  // Optimize: a seed-determined random query.
  qtf::service::OptimizeRequest optimize;
  optimize.seed = 11;
  auto optimized = client->Optimize(optimize);
  if (!optimized.ok()) return Fail("optimize", optimized.status());
  if (optimized.value().sql.empty() || optimized.value().group_count <= 0) {
    std::fprintf(stderr, "qtfctl: optimize returned an empty plan\n");
    return 1;
  }
  std::printf("optimize: ok (%d groups, cost %.3f)\n",
              optimized.value().group_count, optimized.value().cost);

  // Compress: a small suite over 3 rules.
  qtf::service::CompressSuiteRequest compress;
  compress.suite.n_rules = 3;
  compress.suite.k = 1;
  compress.suite.seed = 5;
  auto compressed = client->CompressSuite(compress);
  if (!compressed.ok()) return Fail("compress", compressed.status());
  if (compressed.value().assignment.empty()) {
    std::fprintf(stderr, "qtfctl: compression produced no assignment\n");
    return 1;
  }
  std::printf("compress: ok (%d suite queries, total cost %.3f)\n",
              compressed.value().suite_queries, compressed.value().total_cost);

  // Sql: a hand-written statement through the SQL frontend; re-submitting
  // the canonical rendering must report the same fingerprint.
  qtf::service::SqlRequest sql;
  sql.sql = "SELECT l_orderkey, l_extendedprice FROM lineitem "
            "WHERE l_quantity < 25";
  auto parsed = client->Sql(sql);
  if (!parsed.ok()) return Fail("sql", parsed.status());
  if (parsed.value().fingerprint == 0 ||
      parsed.value().canonical_sql.empty()) {
    std::fprintf(stderr, "qtfctl: sql bound to an empty tree\n");
    return 1;
  }
  qtf::service::SqlRequest again;
  again.sql = parsed.value().canonical_sql;
  auto rebound = client->Sql(again);
  if (!rebound.ok()) return Fail("sql (canonical re-parse)", rebound.status());
  if (rebound.value().fingerprint != parsed.value().fingerprint) {
    std::fprintf(stderr,
                 "qtfctl: canonical SQL re-bound to fingerprint %llx, "
                 "expected %llx\n",
                 static_cast<unsigned long long>(rebound.value().fingerprint),
                 static_cast<unsigned long long>(parsed.value().fingerprint));
    return 1;
  }
  std::printf("sql: ok (%d operators, fingerprint %016llx)\n",
              parsed.value().operator_count,
              static_cast<unsigned long long>(parsed.value().fingerprint));

  // Metrics: the server must have counted the requests above.
  auto metrics = client->Metrics(qtf::service::MetricsRequest{});
  if (!metrics.ok()) return Fail("metrics", metrics.status());
  const long requests =
      MetricValue(metrics.value().body, "qtf.service.requests");
  if (requests <= 0) {
    std::fprintf(stderr,
                 "qtfctl: expected qtf.service.requests > 0, got %ld\n",
                 requests);
    return 1;
  }
  const long sql_parsed = MetricValue(metrics.value().body, "qtf.sql.parsed");
  if (sql_parsed <= 0) {
    std::fprintf(stderr, "qtfctl: expected qtf.sql.parsed > 0, got %ld\n",
                 sql_parsed);
    return 1;
  }
  std::printf("metrics: ok (qtf.service.requests = %ld, qtf.sql.parsed = "
              "%ld)\n",
              requests, sql_parsed);
  std::printf("smoke: all checks passed\n");
  return 0;
}

int RunSql(qtf::client::ServiceClient* client, const std::string& statement,
           qtf::service::SqlMode mode) {
  qtf::service::SqlRequest request;
  request.sql = statement;
  request.mode = mode;
  auto response = client->Sql(request);
  if (!response.ok()) return Fail("sql", response.status());
  const qtf::service::SqlResponse& r = response.value();
  std::printf("fingerprint: %016llx\n",
              static_cast<unsigned long long>(r.fingerprint));
  std::printf("operators: %d\n", r.operator_count);
  std::printf("canonical: %s\n", r.canonical_sql.c_str());
  if (mode != qtf::service::SqlMode::kParseOnly) {
    std::printf("cost: %.6f\n", r.cost);
    std::printf("memo: %d groups, %lld exprs%s\n", r.group_count,
                static_cast<long long>(r.expr_count),
                r.budget_exhausted ? " (budget exhausted)" : "");
    std::string rules;
    for (qtf::RuleId id : r.exercised_rules) {
      if (!rules.empty()) rules += ", ";
      rules += std::to_string(id);
    }
    std::printf("exercised rules: [%s]\n", rules.c_str());
  }
  if (mode == qtf::service::SqlMode::kCorrectness) {
    std::printf("correctness: %d plans executed, %d identical skipped, "
                "%d unavailable, %zu violations\n",
                r.plans_executed, r.skipped_identical_plans,
                r.skipped_unavailable, r.violations.size());
    for (const qtf::service::ViolationSummary& v : r.violations) {
      std::printf("violation: target %d (%s): %lld rows vs %lld rows\n",
                  v.target, v.target_name.c_str(),
                  static_cast<long long>(v.base_rows),
                  static_cast<long long>(v.restricted_rows));
    }
    if (!r.violations.empty()) return 1;
  }
  return 0;
}

int RunLoadRules(qtf::client::ServiceClient* client, const std::string& path,
                 bool dry_run) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "qtfctl: cannot read \"%s\"\n", path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();

  qtf::service::LoadRulesRequest request;
  request.text = std::move(text).str();
  request.dry_run = dry_run;
  auto response = client->LoadRules(request);
  if (!response.ok()) return Fail("load-rules", response.status());
  const qtf::service::LoadRulesResponse& r = response.value();
  for (size_t i = 0; i < r.names.size(); ++i) {
    if (dry_run) {
      std::printf("would load: %s\n", r.names[i].c_str());
    } else {
      std::printf("loaded: %s (id %d)\n", r.names[i].c_str(),
                  i < r.ids.size() ? r.ids[i] : -1);
    }
  }
  std::printf("%s: %d rule%s compiled\n", dry_run ? "dry-run" : "load-rules",
              r.compiled, r.compiled == 1 ? "" : "s");
  return 0;
}

int RunRules(qtf::client::ServiceClient* client) {
  auto response = client->ListRules(qtf::service::ListRulesRequest{});
  if (!response.ok()) return Fail("rules", response.status());
  std::printf("%4s  %-28s %-14s %-7s  %s\n", "id", "name", "type", "origin",
              "pattern");
  for (const qtf::service::RuleInfo& rule : response.value().rules) {
    std::printf("%4d  %-28s %-14s %-7s  %s\n", rule.id, rule.name.c_str(),
                rule.type == 0 ? "exploration" : "implementation",
                rule.origin == 0 ? "builtin" : "dsl", rule.pattern.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 7433;
  std::string mode_name = "parse";
  bool dry_run = false;
  std::vector<std::string> positional;

  const char* usage =
      "usage: %s [--host IP] [--port N] "
      "{smoke | metrics | sql SQL [--mode parse|optimize|correctness] | "
      "load-rules FILE [--dry-run] | rules}\n";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--mode" && i + 1 < argc) {
      mode_name = argv[++i];
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (!arg.empty() && arg[0] != '-' && positional.size() < 2) {
      positional.push_back(arg);
    } else {
      std::fprintf(stderr, usage, argv[0]);
      return 2;
    }
  }
  const std::string command = positional.empty() ? "" : positional[0];

  auto client_or = qtf::client::ServiceClient::Connect(host, port);
  if (!client_or.ok()) return Fail("connect", client_or.status());
  qtf::client::ServiceClient* client = client_or.value().get();

  if (command == "smoke") return RunSmoke(client);
  if (command == "sql") {
    if (positional.size() != 2) {
      std::fprintf(stderr, usage, argv[0]);
      return 2;
    }
    qtf::service::SqlMode mode;
    if (mode_name == "parse") {
      mode = qtf::service::SqlMode::kParseOnly;
    } else if (mode_name == "optimize") {
      mode = qtf::service::SqlMode::kOptimize;
    } else if (mode_name == "correctness") {
      mode = qtf::service::SqlMode::kCorrectness;
    } else {
      std::fprintf(stderr, "qtfctl: unknown --mode \"%s\"\n",
                   mode_name.c_str());
      return 2;
    }
    return RunSql(client, positional[1], mode);
  }
  if (command == "load-rules") {
    if (positional.size() != 2) {
      std::fprintf(stderr, usage, argv[0]);
      return 2;
    }
    return RunLoadRules(client, positional[1], dry_run);
  }
  if (command == "rules") return RunRules(client);
  if (command == "metrics" || command.empty()) {
    auto metrics = client->Metrics(qtf::service::MetricsRequest{});
    if (!metrics.ok()) return Fail("metrics", metrics.status());
    std::printf("%s\n", metrics.value().body.c_str());
    return 0;
  }
  std::fprintf(stderr, "qtfctl: unknown command \"%s\"\n", command.c_str());
  return 2;
}
