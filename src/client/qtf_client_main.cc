// qtfctl — command-line client for a running qtfd.
//
//   qtfctl [--host 127.0.0.1] [--port 7433] COMMAND
//
// Commands:
//   smoke     generate -> optimize -> compress -> metrics against the
//             server, verifying each response and that the server counted
//             the requests (qtf.service.requests > 0). Exit 0 iff all pass.
//             This is what the CI serving job runs.
//   metrics   print the server's metrics snapshot (JSON).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "client/client.h"

namespace {

int Fail(const char* what, const qtf::Status& status) {
  std::fprintf(stderr, "qtfctl: %s: %s\n", what, status.ToString().c_str());
  return 1;
}

/// Pulls the integer value of `"name":` out of the metrics JSON; -1 when
/// the metric is absent.
long MetricValue(const std::string& json, const std::string& name) {
  const std::string needle = "\"" + name + "\":";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return -1;
  return std::strtol(json.c_str() + at + needle.size(), nullptr, 10);
}

int RunSmoke(qtf::client::ServiceClient* client) {
  // Generate: one query for the first logical rule.
  qtf::service::GenerateRequest generate;
  generate.targets = {0};
  generate.seed = 7;
  auto generated = client->Generate(generate);
  if (!generated.ok()) return Fail("generate", generated.status());
  if (!generated.value().success || generated.value().sql.empty()) {
    std::fprintf(stderr, "qtfctl: generate produced no query\n");
    return 1;
  }
  std::printf("generate: ok (%d operators, cost %.3f)\n",
              generated.value().operator_count, generated.value().cost);

  // Optimize: a seed-determined random query.
  qtf::service::OptimizeRequest optimize;
  optimize.seed = 11;
  auto optimized = client->Optimize(optimize);
  if (!optimized.ok()) return Fail("optimize", optimized.status());
  if (optimized.value().sql.empty() || optimized.value().group_count <= 0) {
    std::fprintf(stderr, "qtfctl: optimize returned an empty plan\n");
    return 1;
  }
  std::printf("optimize: ok (%d groups, cost %.3f)\n",
              optimized.value().group_count, optimized.value().cost);

  // Compress: a small suite over 3 rules.
  qtf::service::CompressSuiteRequest compress;
  compress.suite.n_rules = 3;
  compress.suite.k = 1;
  compress.suite.seed = 5;
  auto compressed = client->CompressSuite(compress);
  if (!compressed.ok()) return Fail("compress", compressed.status());
  if (compressed.value().assignment.empty()) {
    std::fprintf(stderr, "qtfctl: compression produced no assignment\n");
    return 1;
  }
  std::printf("compress: ok (%d suite queries, total cost %.3f)\n",
              compressed.value().suite_queries, compressed.value().total_cost);

  // Metrics: the server must have counted the requests above.
  auto metrics = client->Metrics(qtf::service::MetricsRequest{});
  if (!metrics.ok()) return Fail("metrics", metrics.status());
  const long requests =
      MetricValue(metrics.value().body, "qtf.service.requests");
  if (requests <= 0) {
    std::fprintf(stderr,
                 "qtfctl: expected qtf.service.requests > 0, got %ld\n",
                 requests);
    return 1;
  }
  std::printf("metrics: ok (qtf.service.requests = %ld)\n", requests);
  std::printf("smoke: all checks passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 7433;
  std::string command;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (!arg.empty() && arg[0] != '-' && command.empty()) {
      command = arg;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--host IP] [--port N] {smoke|metrics}\n",
                   argv[0]);
      return 2;
    }
  }

  auto client_or = qtf::client::ServiceClient::Connect(host, port);
  if (!client_or.ok()) return Fail("connect", client_or.status());
  qtf::client::ServiceClient* client = client_or.value().get();

  if (command == "smoke") return RunSmoke(client);
  if (command == "metrics" || command.empty()) {
    auto metrics = client->Metrics(qtf::service::MetricsRequest{});
    if (!metrics.ok()) return Fail("metrics", metrics.status());
    std::printf("%s\n", metrics.value().body.c_str());
    return 0;
  }
  std::fprintf(stderr, "qtfctl: unknown command \"%s\"\n", command.c_str());
  return 2;
}
