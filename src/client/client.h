#ifndef QTF_CLIENT_CLIENT_H_
#define QTF_CLIENT_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "net/wire.h"
#include "service/api.h"

namespace qtf {
namespace client {

/// Thin synchronous client for a qtfd server: one TCP connection, one
/// request in flight at a time (issue concurrent requests from multiple
/// clients — qtfd multiplexes connections, and the protocol's request ids
/// exist so richer clients can pipeline later). The typed calls mirror
/// RuleTestService exactly: a remote Generate() returns the same
/// Result<GenerateResponse> an in-process call would, with server-side
/// errors (shed, deadline, validation) decoded back into their Status.
class ServiceClient {
 public:
  /// Connects to a numeric IPv4 address ("127.0.0.1"), no name resolution.
  static Result<std::unique_ptr<ServiceClient>> Connect(
      const std::string& host, uint16_t port);

  ~ServiceClient();
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  Result<service::GenerateResponse> Generate(
      const service::GenerateRequest& request);
  Result<service::OptimizeResponse> Optimize(
      const service::OptimizeRequest& request);
  Result<service::CompressSuiteResponse> CompressSuite(
      const service::CompressSuiteRequest& request);
  Result<service::CorrectnessResponse> RunCorrectness(
      const service::CorrectnessRequest& request);
  Result<service::SqlResponse> Sql(const service::SqlRequest& request);
  Result<service::LoadRulesResponse> LoadRules(
      const service::LoadRulesRequest& request);
  Result<service::ListRulesResponse> ListRules(
      const service::ListRulesRequest& request);
  Result<service::MetricsResponse> Metrics(
      const service::MetricsRequest& request);

  /// Sends any request variant and decodes the matching response variant.
  /// kError frames come back as their carried Status (a shed request is
  /// kResourceExhausted here, exactly as in-process).
  Result<service::ServiceResponse> Call(const service::ServiceRequest& request);

  /// Sends a raw frame and returns the raw response frame, no payload
  /// decoding. This is the byte-identity test hook: the returned payload
  /// can be compared bit-for-bit against a local EncodeResponse().
  Result<net::Frame> CallRaw(net::MessageType type, std::string_view payload);

 private:
  explicit ServiceClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  uint32_t next_request_id_ = 1;
  net::FrameDecoder decoder_;
};

}  // namespace client
}  // namespace qtf

#endif  // QTF_CLIENT_CLIENT_H_
