#ifndef QTF_PATTERN_PATTERN_H_
#define QTF_PATTERN_PATTERN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "logical/ops.h"

namespace qtf {

class PatternNode;
using PatternNodePtr = std::shared_ptr<const PatternNode>;

/// A rule pattern tree (paper Section 3.1, Figure 3): concrete operator
/// nodes that must be present, plus generic placeholders ("circles") that
/// match any logical operator. A logical tree containing the pattern is a
/// *necessary* condition for the rule to be exercised.
///
/// The paper's key API extension is that the DBMS exports these patterns
/// (in XML) so the query generator can instantiate them directly; see
/// PatternToXml / PatternFromXml.
class PatternNode {
 public:
  enum class Type {
    kOperator,  // concrete logical operator kind (optionally join-kind-constrained)
    kAny,       // generic placeholder; matches any operator subtree
  };

  /// Generic placeholder.
  static PatternNodePtr Any();
  /// Concrete operator with children patterns.
  static PatternNodePtr Op(LogicalOpKind kind,
                           std::vector<PatternNodePtr> children);
  /// Join with a specific join kind.
  static PatternNodePtr Join(JoinKind join_kind, PatternNodePtr left,
                             PatternNodePtr right);

  Type type() const { return type_; }
  LogicalOpKind op_kind() const { return op_kind_; }
  const std::optional<JoinKind>& join_kind() const { return join_kind_; }
  const std::vector<PatternNodePtr>& children() const { return children_; }

  /// Number of nodes (placeholders included).
  int Size() const;
  /// Number of generic placeholders in the tree.
  int PlaceholderCount() const;

  /// "Join[Inner](Any, GroupByAgg(Any))"-style rendering.
  std::string ToString() const;

  // Public for make_shared; use the factories above.
  PatternNode(Type type, LogicalOpKind op_kind,
              std::optional<JoinKind> join_kind,
              std::vector<PatternNodePtr> children)
      : type_(type),
        op_kind_(op_kind),
        join_kind_(join_kind),
        children_(std::move(children)) {}

 private:
  Type type_;
  LogicalOpKind op_kind_;  // valid when type_ == kOperator
  std::optional<JoinKind> join_kind_;
  std::vector<PatternNodePtr> children_;
};

/// Top-anchored structural match: does `op`'s tree shape satisfy `pattern`?
/// Placeholders match any subtree (including GroupRef leaves).
bool MatchesPattern(const LogicalOp& op, const PatternNode& pattern);

/// True if any subtree of `op` matches `pattern`.
bool ContainsPattern(const LogicalOp& op, const PatternNode& pattern);

/// Serializes a pattern to the XML format the extended DBMS API returns
/// (paper Section 3.1: "We have extended the database server with an API
/// through which it returns the rule pattern tree for a rule in a XML
/// format").
std::string PatternToXml(const PatternNode& pattern,
                         const std::string& rule_name);

/// Parses the XML produced by PatternToXml. Returns the pattern tree; the
/// rule name attribute is written to `rule_name` when non-null.
Result<PatternNodePtr> PatternFromXml(const std::string& xml,
                                      std::string* rule_name);

/// Pattern composition for rule pairs (paper Section 3.2). Produces
/// composite patterns by:
///  (1) creating a new root (Join or UnionAll) with both patterns as
///      children, and
///  (2) substituting each generic placeholder of one pattern with the other
///      pattern (both directions).
std::vector<PatternNodePtr> ComposePatterns(const PatternNodePtr& a,
                                            const PatternNodePtr& b);

}  // namespace qtf

#endif  // QTF_PATTERN_PATTERN_H_
