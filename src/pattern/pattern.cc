#include "pattern/pattern.h"

#include "common/str_util.h"

namespace qtf {

PatternNodePtr PatternNode::Any() {
  // Pattern nodes are immutable, and every placeholder is structurally
  // identical — hash-cons them into one process-wide leaf instead of
  // allocating per call (pattern enumeration and composition create
  // thousands of placeholders).
  static const PatternNodePtr kAnyNode = std::make_shared<PatternNode>(
      Type::kAny, LogicalOpKind::kGet, std::nullopt,
      std::vector<PatternNodePtr>{});
  return kAnyNode;
}

PatternNodePtr PatternNode::Op(LogicalOpKind kind,
                               std::vector<PatternNodePtr> children) {
  return std::make_shared<PatternNode>(Type::kOperator, kind, std::nullopt,
                                       std::move(children));
}

PatternNodePtr PatternNode::Join(JoinKind join_kind, PatternNodePtr left,
                                 PatternNodePtr right) {
  return std::make_shared<PatternNode>(
      Type::kOperator, LogicalOpKind::kJoin, join_kind,
      std::vector<PatternNodePtr>{std::move(left), std::move(right)});
}

int PatternNode::Size() const {
  int n = 1;
  for (const PatternNodePtr& child : children_) n += child->Size();
  return n;
}

int PatternNode::PlaceholderCount() const {
  if (type_ == Type::kAny) return 1;
  int n = 0;
  for (const PatternNodePtr& child : children_) n += child->PlaceholderCount();
  return n;
}

std::string PatternNode::ToString() const {
  if (type_ == Type::kAny) return "Any";
  std::string name = LogicalOpKindToString(op_kind_);
  if (join_kind_.has_value()) {
    name += std::string("[") + JoinKindToString(*join_kind_) + "]";
  }
  if (children_.empty()) return name;
  std::vector<std::string> parts;
  for (const PatternNodePtr& child : children_) {
    parts.push_back(child->ToString());
  }
  return name + "(" + ::qtf::Join(parts, ", ") + ")";
}

bool MatchesPattern(const LogicalOp& op, const PatternNode& pattern) {
  if (pattern.type() == PatternNode::Type::kAny) return true;
  if (op.kind() != pattern.op_kind()) return false;
  if (pattern.join_kind().has_value()) {
    if (static_cast<const JoinOp&>(op).join_kind() != *pattern.join_kind()) {
      return false;
    }
  }
  if (op.children().size() != pattern.children().size()) return false;
  for (size_t i = 0; i < op.children().size(); ++i) {
    if (!MatchesPattern(*op.children()[i], *pattern.children()[i])) {
      return false;
    }
  }
  return true;
}

bool ContainsPattern(const LogicalOp& op, const PatternNode& pattern) {
  if (MatchesPattern(op, pattern)) return true;
  for (const LogicalOpPtr& child : op.children()) {
    if (ContainsPattern(*child, pattern)) return true;
  }
  return false;
}

// ---- XML serialization ----

namespace {

void AppendXml(const PatternNode& node, int depth, std::string* out) {
  if (node.type() == PatternNode::Type::kAny) {
    *out += Indent(depth) + "<any/>\n";
    return;
  }
  std::string tag = Indent(depth) + "<op kind=\"" +
                    LogicalOpKindToString(node.op_kind()) + "\"";
  if (node.join_kind().has_value()) {
    tag += std::string(" join=\"") + JoinKindToString(*node.join_kind()) +
           "\"";
  }
  if (node.children().empty()) {
    *out += tag + "/>\n";
    return;
  }
  *out += tag + ">\n";
  for (const PatternNodePtr& child : node.children()) {
    AppendXml(*child, depth + 1, out);
  }
  *out += Indent(depth) + "</op>\n";
}

/// Minimal recursive-descent parser over the XML subset emitted by
/// PatternToXml. Not a general XML parser.
class XmlParser {
 public:
  explicit XmlParser(const std::string& input) : input_(input) {}

  Result<PatternNodePtr> ParseRoot(std::string* rule_name) {
    SkipWhitespace();
    QTF_RETURN_NOT_OK(Expect("<rulepattern"));
    QTF_ASSIGN_OR_RETURN(std::string name_attr, ParseAttribute("name"));
    if (rule_name != nullptr) *rule_name = name_attr;
    QTF_RETURN_NOT_OK(Expect(">"));
    QTF_ASSIGN_OR_RETURN(PatternNodePtr node, ParseNode());
    SkipWhitespace();
    QTF_RETURN_NOT_OK(Expect("</rulepattern>"));
    return node;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           (input_[pos_] == ' ' || input_[pos_] == '\n' ||
            input_[pos_] == '\t' || input_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Status Expect(const std::string& token) {
    SkipWhitespace();
    if (input_.compare(pos_, token.size(), token) != 0) {
      return Status::InvalidArgument("expected '" + token + "' at offset " +
                                     std::to_string(pos_));
    }
    pos_ += token.size();
    return Status::OK();
  }

  Result<std::string> ParseAttribute(const std::string& name) {
    SkipWhitespace();
    QTF_RETURN_NOT_OK(Expect(name + "=\""));
    size_t end = input_.find('"', pos_);
    if (end == std::string::npos) {
      return Status::InvalidArgument("unterminated attribute " + name);
    }
    std::string value = input_.substr(pos_, end - pos_);
    pos_ = end + 1;
    return value;
  }

  Result<LogicalOpKind> KindFromString(const std::string& s) {
    for (int k = 0; k <= static_cast<int>(LogicalOpKind::kGroupRef); ++k) {
      auto kind = static_cast<LogicalOpKind>(k);
      if (s == LogicalOpKindToString(kind)) return kind;
    }
    return Status::InvalidArgument("unknown operator kind: " + s);
  }

  Result<JoinKind> JoinFromString(const std::string& s) {
    for (int k = 0; k <= static_cast<int>(JoinKind::kLeftAnti); ++k) {
      auto kind = static_cast<JoinKind>(k);
      if (s == JoinKindToString(kind)) return kind;
    }
    return Status::InvalidArgument("unknown join kind: " + s);
  }

  Result<PatternNodePtr> ParseNode() {
    SkipWhitespace();
    if (input_.compare(pos_, 6, "<any/>") == 0) {
      pos_ += 6;
      return PatternNode::Any();
    }
    QTF_RETURN_NOT_OK(Expect("<op"));
    QTF_ASSIGN_OR_RETURN(std::string kind_attr, ParseAttribute("kind"));
    QTF_ASSIGN_OR_RETURN(LogicalOpKind kind, KindFromString(kind_attr));
    std::optional<JoinKind> join_kind;
    SkipWhitespace();
    if (input_.compare(pos_, 5, "join=") == 0) {
      QTF_ASSIGN_OR_RETURN(std::string join_attr, ParseAttribute("join"));
      QTF_ASSIGN_OR_RETURN(JoinKind jk, JoinFromString(join_attr));
      join_kind = jk;
    }
    SkipWhitespace();
    if (input_.compare(pos_, 2, "/>") == 0) {
      pos_ += 2;
      return PatternNodePtr(std::make_shared<PatternNode>(
          PatternNode::Type::kOperator, kind, join_kind,
          std::vector<PatternNodePtr>{}));
    }
    QTF_RETURN_NOT_OK(Expect(">"));
    std::vector<PatternNodePtr> children;
    while (true) {
      SkipWhitespace();
      if (input_.compare(pos_, 5, "</op>") == 0) {
        pos_ += 5;
        break;
      }
      QTF_ASSIGN_OR_RETURN(PatternNodePtr child, ParseNode());
      children.push_back(std::move(child));
    }
    return PatternNodePtr(std::make_shared<PatternNode>(
        PatternNode::Type::kOperator, kind, join_kind, std::move(children)));
  }

  const std::string& input_;
  size_t pos_ = 0;
};

/// All trees obtained by replacing exactly one placeholder of `node` with
/// `replacement`.
void SubstitutePlaceholders(const PatternNodePtr& node,
                            const PatternNodePtr& replacement,
                            std::vector<PatternNodePtr>* out) {
  if (node->type() == PatternNode::Type::kAny) {
    out->push_back(replacement);
    return;
  }
  for (size_t i = 0; i < node->children().size(); ++i) {
    std::vector<PatternNodePtr> child_variants;
    SubstitutePlaceholders(node->children()[i], replacement, &child_variants);
    for (const PatternNodePtr& variant : child_variants) {
      std::vector<PatternNodePtr> children = node->children();
      children[i] = variant;
      out->push_back(std::make_shared<PatternNode>(
          node->type(), node->op_kind(), node->join_kind(),
          std::move(children)));
    }
  }
}

}  // namespace

std::string PatternToXml(const PatternNode& pattern,
                         const std::string& rule_name) {
  std::string out = "<rulepattern name=\"" + rule_name + "\">\n";
  AppendXml(pattern, 1, &out);
  out += "</rulepattern>\n";
  return out;
}

Result<PatternNodePtr> PatternFromXml(const std::string& xml,
                                      std::string* rule_name) {
  XmlParser parser(xml);
  return parser.ParseRoot(rule_name);
}

std::vector<PatternNodePtr> ComposePatterns(const PatternNodePtr& a,
                                            const PatternNodePtr& b) {
  std::vector<PatternNodePtr> out;
  // (1) New root combining both patterns.
  out.push_back(PatternNode::Join(JoinKind::kInner, a, b));
  out.push_back(PatternNode::Op(LogicalOpKind::kUnionAll, {a, b}));
  // (2) Substitute a placeholder of one pattern with the other pattern.
  SubstitutePlaceholders(a, b, &out);
  SubstitutePlaceholders(b, a, &out);
  return out;
}

}  // namespace qtf
