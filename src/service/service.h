#ifndef QTF_SERVICE_SERVICE_H_
#define QTF_SERVICE_SERVICE_H_

#include <memory>
#include <shared_mutex>

#include "service/admission.h"
#include "service/api.h"
#include "sql/frontend.h"
#include "testing/framework.h"

namespace qtf {
namespace service {

/// The rule-testing framework as a multi-tenant service: one resident
/// RuleTestFramework executing plain request/response structs (service/api.h)
/// behind admission control, budgets, deadlines and cancellation. Callable
/// in-process (tests and embedders call the typed methods directly) and over
/// the wire identically — the TCP transport (src/net/) decodes a request,
/// runs it through Execute, and encodes whatever comes back, so a remote
/// call returns byte-identical payloads to a local one for the same seeds.
///
/// Residency is the point (ROADMAP item 1): the shared PlanCache,
/// NodeInterner and EvalProgramCache warm up across requests, so a busy
/// service answers repeat seeds from cache instead of re-searching.
///
/// Thread-safety: every method may be called concurrently. Requests execute
/// on the caller's thread (transports bring their own worker pool); shared
/// mutable state is confined to the framework's thread-safe components.
class RuleTestService {
 public:
  struct Config {
    /// The resident framework's configuration. Its ServiceLimits base
    /// doubles as this service's per-request admission control: default
    /// budget, default deadline, retry policy, max_queue_depth.
    RuleTestFramework::Options framework;
  };

  /// Validates the configuration (see RuleTestFramework::Create) and builds
  /// the resident framework.
  static Result<std::unique_ptr<RuleTestService>> Create(Config config);

  /// Typed entry points. Each admits through the gate (shedding with
  /// kResourceExhausted when max_queue_depth requests are in flight),
  /// resolves budget/deadline fallbacks from limits(), and executes.
  Result<GenerateResponse> Generate(const GenerateRequest& request);
  Result<OptimizeResponse> Optimize(const OptimizeRequest& request);
  Result<CompressSuiteResponse> CompressSuite(
      const CompressSuiteRequest& request);
  Result<CorrectnessResponse> RunCorrectness(
      const CorrectnessRequest& request);
  /// SQL text in, bound-tree facts (and optionally optimization /
  /// correctness results) out — the SQL frontend behind the service API.
  Result<SqlResponse> Sql(const SqlRequest& request);
  /// Compile .qtr rule specs (src/ruledsl/) and register them into the
  /// resident registry — the discovered-rule ingestion path (ROADMAP
  /// item 4). Registration invalidates the plan cache (cached results were
  /// computed under the smaller rule set) and extends the per-rule metric
  /// families. All-or-nothing: any compile error or name collision
  /// registers nothing.
  Result<LoadRulesResponse> LoadRules(const LoadRulesRequest& request);
  /// Introspect the resident registry (id, name, type, pattern, origin).
  Result<ListRulesResponse> ListRules(const ListRulesRequest& request);
  /// Metrics bypass admission entirely: the registry must stay observable
  /// exactly when the service is saturated and shedding.
  Result<MetricsResponse> Metrics(const MetricsRequest& request);

  /// Variant entry point for transports and generic callers: admits (except
  /// MetricsRequest), then dispatches.
  Result<ServiceResponse> Execute(const ServiceRequest& request);

  /// As Execute, but the caller already holds an admission ticket — this is
  /// what a transport calls after shedding at frame-receipt time, so a
  /// request is never counted against the gate twice. MetricsRequest needs
  /// (and consumes) no ticket.
  Result<ServiceResponse> ExecuteAdmitted(const ServiceRequest& request);

  /// The admission gate transports shed through before queueing work.
  AdmissionGate* admission() { return &gate_; }
  const ServiceLimits& limits() const { return framework_->limits(); }
  /// The resident framework (shared caches, metrics registry, rules).
  RuleTestFramework* framework() { return framework_.get(); }
  obs::MetricsRegistry* metrics() { return framework_->metrics(); }

 private:
  /// Deadline/budget/cancel resolution for one admitted request, plus its
  /// latency observation (qtf.service.request_seconds, counted on scope
  /// destruction so error paths are measured too).
  class RequestScope;

  explicit RuleTestService(std::unique_ptr<RuleTestFramework> framework);

  Status ValidateRuleIds(const std::vector<RuleId>& ids,
                         const char* field) const;
  Status ValidateSuiteSpec(const SuiteSpec& spec) const;
  /// Generates the suite and compresses it — the shared front half of
  /// CompressSuite and RunCorrectness. On success `suite` and `solution`
  /// are filled.
  Status BuildCompressedSuite(const SuiteSpec& spec,
                              CompressionAlgorithm algorithm,
                              bool exploit_monotonicity, RequestScope* scope,
                              TestSuite* suite, CompressionSolution* solution);

  Result<GenerateResponse> DoGenerate(const GenerateRequest& request);
  Result<OptimizeResponse> DoOptimize(const OptimizeRequest& request);
  Result<CompressSuiteResponse> DoCompressSuite(
      const CompressSuiteRequest& request);
  Result<CorrectnessResponse> DoRunCorrectness(
      const CorrectnessRequest& request);
  Result<SqlResponse> DoSql(const SqlRequest& request);
  Result<LoadRulesResponse> DoLoadRules(const LoadRulesRequest& request);
  Result<ListRulesResponse> DoListRules(const ListRulesRequest& request);
  Result<MetricsResponse> DoMetrics(const MetricsRequest& request);

  std::unique_ptr<RuleTestFramework> framework_;
  /// Shares the framework's catalog, interner and metrics; thread-safe, so
  /// one resident frontend serves every SqlRequest.
  std::unique_ptr<sql::SqlFrontend> frontend_;
  AdmissionGate gate_;
  /// Readers-writer lock over the resident rule registry: every request
  /// holds it shared for its whole execution (registry iteration inside
  /// the optimizer must not race a vector push_back), LoadRules holds it
  /// exclusive while registering. Uncontended in the common case — rule
  /// loading is rare control-plane traffic.
  std::shared_mutex rules_mutex_;
  obs::Counter* requests_ = nullptr;        // qtf.service.requests
  obs::Counter* request_errors_ = nullptr;  // qtf.service.request_errors
  obs::Counter* dsl_loaded_ = nullptr;      // qtf.dsl.loaded
  obs::Histogram* request_seconds_ = nullptr;
};

}  // namespace service
}  // namespace qtf

#endif  // QTF_SERVICE_SERVICE_H_
