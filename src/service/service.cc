#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <string>
#include <utility>

#include "compress/compression.h"
#include "compress/edge_costs.h"
#include "compress/matching.h"
#include "qgen/generators.h"
#include "ruledsl/compiler.h"
#include "sql/render.h"

namespace qtf {
namespace service {

const char* CompressionAlgorithmToString(CompressionAlgorithm algorithm) {
  switch (algorithm) {
    case CompressionAlgorithm::kBaseline:
      return "BASELINE";
    case CompressionAlgorithm::kSetMultiCover:
      return "SetMultiCover";
    case CompressionAlgorithm::kTopKIndependent:
      return "TopKIndependent";
    case CompressionAlgorithm::kNoSharingMatching:
      return "NoSharingMatching";
  }
  return "?";
}

const char* SqlModeToString(SqlMode mode) {
  switch (mode) {
    case SqlMode::kParseOnly:
      return "parse_only";
    case SqlMode::kOptimize:
      return "optimize";
    case SqlMode::kCorrectness:
      return "correctness";
  }
  return "?";
}

/// Per-request governance state: the resolved deadline, the effective
/// search budget, the caller's cancellation token, and the latency
/// observation (recorded on destruction, so shed-free error paths are
/// measured like successes).
class RuleTestService::RequestScope {
 public:
  RequestScope(const RequestOptions& options, const ServiceLimits& limits,
               obs::Histogram* latency)
      : cancel_(options.cancel),
        budget_(options.budget.unlimited() ? limits.default_budget
                                           : options.budget),
        latency_(latency),
        start_(std::chrono::steady_clock::now()) {
    const double seconds = options.deadline_seconds > 0.0
                               ? options.deadline_seconds
                               : limits.default_deadline_seconds;
    if (seconds > 0.0) deadline_ = Deadline::After(seconds);
  }

  ~RequestScope() {
    if (latency_ != nullptr) {
      latency_->Observe(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count());
    }
  }

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

  const CancellationToken& cancel() const { return cancel_; }

  /// Effective per-phase search budget. When a deadline is active its
  /// remaining time also caps the budget's wall clock, so a single long
  /// search cannot overrun the whole-request deadline by much.
  SearchBudget budget() const {
    SearchBudget budget = budget_;
    if (!deadline_.never()) {
      const double remaining = deadline_.remaining_seconds();
      if (budget.wall_seconds <= 0.0 || remaining < budget.wall_seconds) {
        budget.wall_seconds = std::max(remaining, 1e-9);
      }
    }
    return budget;
  }

  /// Phase-boundary check: kDeadlineExceeded / kCancelled, or OK.
  Status Check(const char* phase) const {
    if (cancel_.cancelled()) {
      return Status::Cancelled(std::string("request cancelled before ") +
                               phase);
    }
    if (deadline_.expired()) {
      return Status::DeadlineExceeded(
          std::string("request deadline expired before ") + phase);
    }
    return Status::OK();
  }

 private:
  CancellationToken cancel_;
  SearchBudget budget_;
  Deadline deadline_;
  obs::Histogram* latency_;
  std::chrono::steady_clock::time_point start_;
};

RuleTestService::RuleTestService(std::unique_ptr<RuleTestFramework> framework)
    : framework_(std::move(framework)),
      gate_(framework_->limits().max_queue_depth, framework_->metrics()) {
  sql::SqlFrontendOptions frontend_options;
  frontend_options.interner = framework_->interner();
  frontend_options.metrics = framework_->metrics();
  frontend_ = std::make_unique<sql::SqlFrontend>(&framework_->catalog(),
                                                 frontend_options);
  obs::MetricsRegistry* metrics = framework_->metrics();
  requests_ = metrics->counter("qtf.service.requests");
  request_errors_ = metrics->counter("qtf.service.request_errors");
  // Shares the framework's registry, so Create-time Options::dsl_rules
  // loads are already counted here.
  dsl_loaded_ = metrics->counter("qtf.dsl.loaded");
  request_seconds_ = metrics->histogram("qtf.service.request_seconds");
}

Result<std::unique_ptr<RuleTestService>> RuleTestService::Create(
    Config config) {
  QTF_ASSIGN_OR_RETURN(std::unique_ptr<RuleTestFramework> framework,
                       RuleTestFramework::Create(std::move(config.framework)));
  return std::unique_ptr<RuleTestService>(
      new RuleTestService(std::move(framework)));
}

Status RuleTestService::ValidateRuleIds(const std::vector<RuleId>& ids,
                                        const char* field) const {
  const int n = framework_->rules().size();
  for (RuleId id : ids) {
    if (id < 0 || id >= n) {
      return Status::InvalidArgument(
          std::string(field) + " holds rule id " + std::to_string(id) +
          ", valid ids are [0, " + std::to_string(n) + ")");
    }
  }
  return Status::OK();
}

Status RuleTestService::ValidateSuiteSpec(const SuiteSpec& spec) const {
  const int logical =
      static_cast<int>(framework_->LogicalRules().size());
  if (spec.n_rules < 1 || spec.n_rules > logical) {
    return Status::InvalidArgument(
        "SuiteSpec::n_rules must be in [1, " + std::to_string(logical) +
        "], got " + std::to_string(spec.n_rules));
  }
  if (spec.pairs && spec.n_rules < 2) {
    return Status::InvalidArgument(
        "SuiteSpec::pairs needs n_rules >= 2, got " +
        std::to_string(spec.n_rules));
  }
  if (spec.k < 1) {
    return Status::InvalidArgument("SuiteSpec::k must be >= 1, got " +
                                   std::to_string(spec.k));
  }
  if (spec.max_trials < 1) {
    return Status::InvalidArgument(
        "SuiteSpec::max_trials must be >= 1, got " +
        std::to_string(spec.max_trials));
  }
  if (spec.extra_ops < 0) {
    return Status::InvalidArgument(
        "SuiteSpec::extra_ops must be >= 0, got " +
        std::to_string(spec.extra_ops));
  }
  return Status::OK();
}

Result<GenerateResponse> RuleTestService::DoGenerate(
    const GenerateRequest& request) {
  if (request.targets.empty() || request.targets.size() > 2) {
    return Status::InvalidArgument(
        "GenerateRequest::targets must hold 1 rule id (singleton) or 2 "
        "(rule pair), got " + std::to_string(request.targets.size()));
  }
  QTF_RETURN_NOT_OK(
      ValidateRuleIds(request.targets, "GenerateRequest::targets"));
  if (request.require_relevant && request.targets.size() != 1) {
    return Status::InvalidArgument(
        "GenerateRequest::require_relevant is only meaningful for "
        "singleton targets");
  }
  if (request.max_trials < 1) {
    return Status::InvalidArgument(
        "GenerateRequest::max_trials must be >= 1, got " +
        std::to_string(request.max_trials));
  }
  if (request.extra_ops < 0) {
    return Status::InvalidArgument(
        "GenerateRequest::extra_ops must be >= 0, got " +
        std::to_string(request.extra_ops));
  }

  RequestScope scope(request.options, limits(), request_seconds_);
  QTF_RETURN_NOT_OK(scope.Check("generation"));
  GenerationConfig config;
  config.method = request.method;
  config.max_trials = request.max_trials;
  config.extra_ops = request.extra_ops;
  config.seed = request.seed;
  config.cancel = scope.cancel();
  config.budget = scope.budget();
  Result<GenerationOutcome> outcome =
      request.require_relevant
          ? framework_->generator()->GenerateRelevant(request.targets[0],
                                                      config)
          : framework_->generator()->Generate(request.targets, config);
  QTF_RETURN_NOT_OK(outcome.status());

  GenerateResponse response;
  response.success = outcome->success;
  response.sql = outcome->sql;
  response.rule_set.assign(outcome->rule_set.begin(),
                           outcome->rule_set.end());
  response.cost = outcome->cost;
  response.operator_count = outcome->operator_count;
  response.trials = outcome->trials;
  return response;
}

Result<OptimizeResponse> RuleTestService::DoOptimize(
    const OptimizeRequest& request) {
  if (request.min_ops < 1 || request.max_ops < request.min_ops ||
      request.max_ops > 64) {
    return Status::InvalidArgument(
        "OptimizeRequest needs 1 <= min_ops <= max_ops <= 64, got [" +
        std::to_string(request.min_ops) + ", " +
        std::to_string(request.max_ops) + "]");
  }
  QTF_RETURN_NOT_OK(ValidateRuleIds(request.disabled_rules,
                                    "OptimizeRequest::disabled_rules"));

  RequestScope scope(request.options, limits(), request_seconds_);
  QTF_RETURN_NOT_OK(scope.Check("optimization"));
  RandomGeneratorConfig random_config;
  random_config.min_ops = request.min_ops;
  random_config.max_ops = request.max_ops;
  TreeBuilderOptions builder_options;
  builder_options.interner = framework_->interner();
  RandomQueryGenerator generator(&framework_->catalog(), request.seed,
                                 random_config, builder_options);
  Query query = generator.Generate();

  OptimizerOptions options;
  options.disabled_rules.insert(request.disabled_rules.begin(),
                                request.disabled_rules.end());
  options.budget = scope.budget();
  options.cancel = scope.cancel();
  QTF_ASSIGN_OR_RETURN(OptimizeResult result,
                       framework_->optimizer()->Optimize(query, options));

  OptimizeResponse response;
  response.sql = GenerateSql(query);
  response.cost = result.cost;
  response.exercised_rules.assign(result.exercised_rules.begin(),
                                  result.exercised_rules.end());
  response.group_count = result.group_count;
  response.expr_count = result.expr_count;
  response.budget_exhausted = result.budget_exhausted;
  return response;
}

Status RuleTestService::BuildCompressedSuite(
    const SuiteSpec& spec, CompressionAlgorithm algorithm,
    bool exploit_monotonicity, RequestScope* scope, TestSuite* suite,
    CompressionSolution* solution) {
  QTF_RETURN_NOT_OK(ValidateSuiteSpec(spec));
  QTF_RETURN_NOT_OK(scope->Check("suite generation"));

  std::vector<RuleTarget> targets =
      spec.pairs ? framework_->LogicalRulePairs(spec.n_rules)
                 : framework_->LogicalRuleSingletons(spec.n_rules);
  GenerationConfig config;
  config.method = spec.method;
  config.max_trials = spec.max_trials;
  config.extra_ops = spec.extra_ops;
  config.seed = spec.seed;
  config.cancel = scope->cancel();
  config.budget = scope->budget();
  QTF_ASSIGN_OR_RETURN(
      *suite, framework_->suite_generator()->Generate(targets, spec.k,
                                                      config));

  QTF_RETURN_NOT_OK(scope->Check("compression"));
  EdgeCostProvider provider(framework_->optimizer(), suite);
  provider.set_thread_pool(framework_->thread_pool());
  provider.set_cancellation(scope->cancel());
  Result<CompressionSolution> compressed =
      Status::Internal("unreachable: unhandled compression algorithm");
  switch (algorithm) {
    case CompressionAlgorithm::kBaseline:
      compressed = CompressBaseline(&provider);
      break;
    case CompressionAlgorithm::kSetMultiCover:
      compressed = CompressSetMultiCover(&provider, spec.k);
      break;
    case CompressionAlgorithm::kTopKIndependent:
      compressed =
          CompressTopKIndependent(&provider, spec.k, exploit_monotonicity);
      break;
    case CompressionAlgorithm::kNoSharingMatching:
      compressed = CompressNoSharingMatching(&provider, spec.k);
      break;
  }
  QTF_RETURN_NOT_OK(compressed.status());
  *solution = *std::move(compressed);
  return Status::OK();
}

Result<CompressSuiteResponse> RuleTestService::DoCompressSuite(
    const CompressSuiteRequest& request) {
  RequestScope scope(request.options, limits(), request_seconds_);
  TestSuite suite;
  CompressionSolution solution;
  QTF_RETURN_NOT_OK(BuildCompressedSuite(request.suite, request.algorithm,
                                         request.exploit_monotonicity,
                                         &scope, &suite, &solution));
  CompressSuiteResponse response;
  response.suite_queries = static_cast<int32_t>(suite.queries.size());
  response.assignment.reserve(solution.assignment.size());
  for (const std::vector<int>& queries : solution.assignment) {
    response.assignment.emplace_back(queries.begin(), queries.end());
  }
  response.total_cost = solution.total_cost;
  response.optimizer_calls = solution.optimizer_calls;
  response.degraded_targets = solution.degraded_targets;
  response.estimated_edges = solution.estimated_edges;
  return response;
}

Result<CorrectnessResponse> RuleTestService::DoRunCorrectness(
    const CorrectnessRequest& request) {
  RequestScope scope(request.options, limits(), request_seconds_);
  TestSuite suite;
  CompressionSolution solution;
  QTF_RETURN_NOT_OK(BuildCompressedSuite(request.suite, request.algorithm,
                                         request.exploit_monotonicity,
                                         &scope, &suite, &solution));
  QTF_RETURN_NOT_OK(scope.Check("correctness execution"));
  QTF_ASSIGN_OR_RETURN(
      CorrectnessReport report,
      framework_->runner()->Run(suite, solution.assignment, scope.cancel()));

  CorrectnessResponse response;
  response.plans_executed = report.plans_executed;
  response.skipped_identical_plans = report.skipped_identical_plans;
  response.skipped_unavailable = report.skipped_unavailable;
  response.violations.reserve(report.violations.size());
  for (const CorrectnessViolation& violation : report.violations) {
    ViolationSummary summary;
    summary.target = violation.target;
    summary.query = violation.query;
    summary.target_name = violation.target_name;
    summary.sql = violation.sql;
    summary.base_rows = violation.base_rows;
    summary.restricted_rows = violation.restricted_rows;
    response.violations.push_back(std::move(summary));
  }
  return response;
}

Result<SqlResponse> RuleTestService::DoSql(const SqlRequest& request) {
  if (request.sql.empty()) {
    return Status::InvalidArgument("SqlRequest::sql is empty");
  }

  RequestScope scope(request.options, limits(), request_seconds_);
  QTF_RETURN_NOT_OK(scope.Check("sql parse"));
  QTF_ASSIGN_OR_RETURN(Query query, frontend_->Parse(request.sql));

  SqlResponse response;
  response.fingerprint = TreeFingerprint(*query.root);
  response.canonical_sql = GenerateSql(query);
  response.operator_count = CountOps(*query.root);
  if (request.mode == SqlMode::kParseOnly) return response;

  QTF_RETURN_NOT_OK(scope.Check("optimization"));
  OptimizerOptions options;
  options.budget = scope.budget();
  options.cancel = scope.cancel();
  QTF_ASSIGN_OR_RETURN(OptimizeResult result,
                       framework_->optimizer()->Optimize(query, options));
  response.cost = result.cost;
  response.exercised_rules.assign(result.exercised_rules.begin(),
                                  result.exercised_rules.end());
  response.group_count = result.group_count;
  response.expr_count = result.expr_count;
  response.budget_exhausted = result.budget_exhausted;
  if (request.mode == SqlMode::kOptimize) return response;

  // kCorrectness: the caller's one query is the whole suite, and every
  // logical rule the optimizer exercised on it becomes a singleton target —
  // the runner then compares Plan(q) against Plan(q, ¬rule) for each.
  // Physical (implementation) rules are excluded the same way suite
  // generation excludes them: disabling one never changes logical results.
  const std::vector<RuleId> logical = framework_->LogicalRules();
  const RuleIdSet logical_set(logical.begin(), logical.end());
  TestSuite suite;
  TestCase test_case;
  test_case.query = query;
  test_case.sql = response.canonical_sql;
  test_case.rule_set = result.exercised_rules;
  test_case.cost = result.cost;
  suite.queries.push_back(std::move(test_case));
  for (RuleId rule : result.exercised_rules) {
    if (logical_set.count(rule) == 0) continue;
    suite.targets.push_back(RuleTarget{{rule}});
    suite.per_target.push_back({0});
  }

  QTF_RETURN_NOT_OK(scope.Check("correctness execution"));
  QTF_ASSIGN_OR_RETURN(
      CorrectnessReport report,
      framework_->runner()->Run(suite, suite.per_target, scope.cancel()));
  response.plans_executed = report.plans_executed;
  response.skipped_identical_plans = report.skipped_identical_plans;
  response.skipped_unavailable = report.skipped_unavailable;
  response.violations.reserve(report.violations.size());
  for (const CorrectnessViolation& violation : report.violations) {
    ViolationSummary summary;
    summary.target = violation.target;
    summary.query = violation.query;
    summary.target_name = violation.target_name;
    summary.sql = violation.sql;
    summary.base_rows = violation.base_rows;
    summary.restricted_rows = violation.restricted_rows;
    response.violations.push_back(std::move(summary));
  }
  return response;
}

Result<LoadRulesResponse> RuleTestService::DoLoadRules(
    const LoadRulesRequest& request) {
  if (request.text.empty()) {
    return Status::InvalidArgument("LoadRulesRequest::text is empty");
  }
  RequestScope scope(request.options, limits(), request_seconds_);
  QTF_RETURN_NOT_OK(scope.Check("rule compilation"));
  ruledsl::CompileOptions compile_options;
  compile_options.metrics = framework_->metrics();
  QTF_ASSIGN_OR_RETURN(
      std::vector<std::unique_ptr<Rule>> rules,
      ruledsl::CompileRuleDsl(request.text, compile_options));
  // All-or-nothing: check every name before registering any (the compiler
  // already rejects duplicates within the batch).
  RuleRegistry* registry = framework_->mutable_rules();
  for (const std::unique_ptr<Rule>& rule : rules) {
    if (registry->FindByName(rule->name()) != -1) {
      return Status::AlreadyExists("LoadRulesRequest: rule name '" +
                                   rule->name() + "' is already registered");
    }
  }
  LoadRulesResponse response;
  response.compiled = static_cast<int32_t>(rules.size());
  response.names.reserve(rules.size());
  for (const std::unique_ptr<Rule>& rule : rules) {
    response.names.push_back(rule->name());
  }
  if (request.dry_run) return response;
  response.ids.reserve(rules.size());
  for (std::unique_ptr<Rule>& rule : rules) {
    response.ids.push_back(registry->Register(std::move(rule)));
    dsl_loaded_->Increment();
  }
  // Callers hold rules_mutex_ exclusively here (ExecuteAdmitted), so no
  // search is concurrently indexing the per-rule counter vectors.
  framework_->optimizer()->SyncRuleMetrics();
  // Cached results were computed under the smaller rule set; Plan(q) must
  // reflect the grown registry from the next request on.
  framework_->plan_cache()->Clear();
  return response;
}

Result<ListRulesResponse> RuleTestService::DoListRules(
    const ListRulesRequest& request) {
  (void)request;
  ListRulesResponse response;
  const RuleRegistry& registry = framework_->rules();
  response.rules.reserve(registry.rules().size());
  for (const std::unique_ptr<Rule>& rule : registry.rules()) {
    RuleInfo info;
    info.id = rule->id();
    info.name = rule->name();
    info.type = static_cast<uint8_t>(rule->type());
    info.pattern = rule->pattern()->ToString();
    info.origin = static_cast<uint8_t>(rule->origin());
    response.rules.push_back(std::move(info));
  }
  return response;
}

Result<MetricsResponse> RuleTestService::DoMetrics(
    const MetricsRequest& request) {
  obs::MetricsSnapshot snapshot = framework_->metrics()->Snapshot();
  MetricsResponse response;
  response.body = request.text ? snapshot.ToText() : snapshot.ToJson();
  return response;
}

Result<ServiceResponse> RuleTestService::ExecuteAdmitted(
    const ServiceRequest& request) {
  requests_->Increment();
  // Requests iterate the rule registry (optimizer searches, suite
  // generation); LoadRules appends to it. A readers-writer lock over the
  // whole execution keeps the append exclusive without serializing the
  // data plane.
  const bool exclusive = std::holds_alternative<LoadRulesRequest>(request);
  std::shared_lock<std::shared_mutex> shared(rules_mutex_, std::defer_lock);
  std::unique_lock<std::shared_mutex> unique(rules_mutex_, std::defer_lock);
  if (exclusive) {
    unique.lock();
  } else {
    shared.lock();
  }
  Result<ServiceResponse> result = std::visit(
      [this](const auto& typed) -> Result<ServiceResponse> {
        using T = std::decay_t<decltype(typed)>;
        if constexpr (std::is_same_v<T, GenerateRequest>) {
          QTF_ASSIGN_OR_RETURN(GenerateResponse response, DoGenerate(typed));
          return ServiceResponse(std::move(response));
        } else if constexpr (std::is_same_v<T, OptimizeRequest>) {
          QTF_ASSIGN_OR_RETURN(OptimizeResponse response, DoOptimize(typed));
          return ServiceResponse(std::move(response));
        } else if constexpr (std::is_same_v<T, CompressSuiteRequest>) {
          QTF_ASSIGN_OR_RETURN(CompressSuiteResponse response,
                               DoCompressSuite(typed));
          return ServiceResponse(std::move(response));
        } else if constexpr (std::is_same_v<T, CorrectnessRequest>) {
          QTF_ASSIGN_OR_RETURN(CorrectnessResponse response,
                               DoRunCorrectness(typed));
          return ServiceResponse(std::move(response));
        } else if constexpr (std::is_same_v<T, SqlRequest>) {
          QTF_ASSIGN_OR_RETURN(SqlResponse response, DoSql(typed));
          return ServiceResponse(std::move(response));
        } else if constexpr (std::is_same_v<T, LoadRulesRequest>) {
          QTF_ASSIGN_OR_RETURN(LoadRulesResponse response,
                               DoLoadRules(typed));
          return ServiceResponse(std::move(response));
        } else if constexpr (std::is_same_v<T, ListRulesRequest>) {
          QTF_ASSIGN_OR_RETURN(ListRulesResponse response,
                               DoListRules(typed));
          return ServiceResponse(std::move(response));
        } else {
          QTF_ASSIGN_OR_RETURN(MetricsResponse response, DoMetrics(typed));
          return ServiceResponse(std::move(response));
        }
      },
      request);
  if (!result.ok()) request_errors_->Increment();
  return result;
}

Result<ServiceResponse> RuleTestService::Execute(
    const ServiceRequest& request) {
  if (std::holds_alternative<MetricsRequest>(request)) {
    return ExecuteAdmitted(request);
  }
  AdmissionGate::Ticket ticket = gate_.TryEnter();
  if (!ticket) {
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(gate_.max_depth()) +
        " requests in flight); retry with backoff");
  }
  return ExecuteAdmitted(request);
}

Result<GenerateResponse> RuleTestService::Generate(
    const GenerateRequest& request) {
  QTF_ASSIGN_OR_RETURN(ServiceResponse response, Execute(request));
  return std::get<GenerateResponse>(std::move(response));
}

Result<OptimizeResponse> RuleTestService::Optimize(
    const OptimizeRequest& request) {
  QTF_ASSIGN_OR_RETURN(ServiceResponse response, Execute(request));
  return std::get<OptimizeResponse>(std::move(response));
}

Result<CompressSuiteResponse> RuleTestService::CompressSuite(
    const CompressSuiteRequest& request) {
  QTF_ASSIGN_OR_RETURN(ServiceResponse response, Execute(request));
  return std::get<CompressSuiteResponse>(std::move(response));
}

Result<CorrectnessResponse> RuleTestService::RunCorrectness(
    const CorrectnessRequest& request) {
  QTF_ASSIGN_OR_RETURN(ServiceResponse response, Execute(request));
  return std::get<CorrectnessResponse>(std::move(response));
}

Result<SqlResponse> RuleTestService::Sql(const SqlRequest& request) {
  QTF_ASSIGN_OR_RETURN(ServiceResponse response, Execute(request));
  return std::get<SqlResponse>(std::move(response));
}

Result<LoadRulesResponse> RuleTestService::LoadRules(
    const LoadRulesRequest& request) {
  QTF_ASSIGN_OR_RETURN(ServiceResponse response, Execute(request));
  return std::get<LoadRulesResponse>(std::move(response));
}

Result<ListRulesResponse> RuleTestService::ListRules(
    const ListRulesRequest& request) {
  QTF_ASSIGN_OR_RETURN(ServiceResponse response, Execute(request));
  return std::get<ListRulesResponse>(std::move(response));
}

Result<MetricsResponse> RuleTestService::Metrics(
    const MetricsRequest& request) {
  QTF_ASSIGN_OR_RETURN(ServiceResponse response, Execute(request));
  return std::get<MetricsResponse>(std::move(response));
}

}  // namespace service
}  // namespace qtf
