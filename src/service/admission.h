#ifndef QTF_SERVICE_ADMISSION_H_
#define QTF_SERVICE_ADMISSION_H_

#include <atomic>
#include <cstddef>
#include <utility>

#include "obs/metrics.h"

namespace qtf {
namespace service {

/// The admission queue of the serving layer: a bounded count of requests
/// accepted-but-unfinished. TryEnter() either hands out an RAII ticket or
/// refuses immediately — load is shed with kResourceExhausted, never parked
/// on an unbounded queue (docs/serving.md). One gate is shared by every
/// transport in front of a RuleTestService plus its in-process callers, so
/// "queue full" means the same thing everywhere.
///
/// Lock-free: entering is one fetch_add and, on refusal, one fetch_sub;
/// depth is exported as the qtf.service.queue_depth gauge.
class AdmissionGate {
 public:
  /// `max_depth` must be >= 1 (validated by RuleTestFramework::Options).
  /// `metrics` receives qtf.service.queue_depth / qtf.service.sheds; null
  /// disables reporting (tests exercising the bare gate).
  AdmissionGate(size_t max_depth, obs::MetricsRegistry* metrics)
      : max_depth_(max_depth) {
    if (metrics != nullptr) {
      queue_depth_ = metrics->gauge("qtf.service.queue_depth");
      sheds_ = metrics->counter("qtf.service.sheds");
    }
  }
  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  /// One admitted request's slot. Movable, empty-testable; releases the
  /// slot on destruction.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept : gate_(other.gate_) {
      other.gate_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        gate_ = std::exchange(other.gate_, nullptr);
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    /// True when this ticket holds a slot.
    explicit operator bool() const { return gate_ != nullptr; }

    void Release() {
      if (gate_ != nullptr) {
        gate_->Leave();
        gate_ = nullptr;
      }
    }

   private:
    friend class AdmissionGate;
    explicit Ticket(AdmissionGate* gate) : gate_(gate) {}
    AdmissionGate* gate_ = nullptr;
  };

  /// Admits one request, or returns an empty ticket (and counts a shed)
  /// when `max_depth` requests are already in flight.
  Ticket TryEnter() {
    size_t depth = depth_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (depth > max_depth_) {
      depth_.fetch_sub(1, std::memory_order_acq_rel);
      if (sheds_ != nullptr) sheds_->Increment();
      return Ticket();
    }
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<int64_t>(depth));
    }
    return Ticket(this);
  }

  size_t depth() const { return depth_.load(std::memory_order_acquire); }
  size_t max_depth() const { return max_depth_; }

 private:
  void Leave() {
    size_t depth = depth_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<int64_t>(depth));
    }
  }

  const size_t max_depth_;
  std::atomic<size_t> depth_{0};
  obs::Gauge* queue_depth_ = nullptr;
  obs::Counter* sheds_ = nullptr;
};

}  // namespace service
}  // namespace qtf

#endif  // QTF_SERVICE_ADMISSION_H_
