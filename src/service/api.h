#ifndef QTF_SERVICE_API_H_
#define QTF_SERVICE_API_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/budget.h"
#include "qgen/generation.h"

namespace qtf {
namespace service {

/// Per-request governance knobs, the request-side mirror of ServiceLimits:
/// every field that is left at its "unset" default falls back to the
/// service's configured limit. Transport-neutral — the same struct is
/// populated by in-process callers and decoded off the wire (where `cancel`
/// does not travel: remote cancellation is closing the connection, local
/// callers hand a real token).
struct RequestOptions {
  /// Per-optimization search budget; unlimited (all zero) falls back to
  /// ServiceLimits::default_budget.
  SearchBudget budget;
  /// Whole-request deadline, seconds from admission; <= 0 falls back to
  /// ServiceLimits::default_deadline_seconds (0 there = none). Checked at
  /// request phase boundaries — an expired deadline returns
  /// kDeadlineExceeded for the whole request.
  double deadline_seconds = 0.0;
  /// Checked by every phase of the request; a triggered token returns
  /// kCancelled. Never serialized.
  CancellationToken cancel;
};

/// Ask the resident framework for one query exercising `targets`
/// (singleton rule or rule pair) — TargetedQueryGenerator over the wire.
struct GenerateRequest {
  std::vector<RuleId> targets;
  GenerationMethod method = GenerationMethod::kPattern;
  int32_t max_trials = 2000;
  int32_t extra_ops = 0;
  uint64_t seed = 1;
  /// Singleton targets only: additionally require the rule to be relevant
  /// (disabling it changes the plan — paper Section 7).
  bool require_relevant = false;
  RequestOptions options;
};

/// Everything deterministic about a generation outcome. Wall-clock time is
/// deliberately absent — request latency lands in qtf.service.request_seconds
/// — so responses for the same seed are byte-identical across transports,
/// runs and machines.
struct GenerateResponse {
  bool success = false;
  std::string sql;
  std::vector<RuleId> rule_set;  // RuleSet(query), ascending
  double cost = 0.0;
  int32_t operator_count = 0;
  int32_t trials = 0;
};

/// Optimize one seed-determined random query, optionally with rules
/// disabled — the remote probe for Plan(q, ¬R) behaviour. The query is
/// grown by the service's RandomQueryGenerator from `seed` (the transport
/// cannot ship logical trees until the SQL frontend lands; see ROADMAP
/// item 2), so the same seed always optimizes the same query.
struct OptimizeRequest {
  uint64_t seed = 1;
  int32_t min_ops = 2;
  int32_t max_ops = 9;
  std::vector<RuleId> disabled_rules;
  RequestOptions options;
};

struct OptimizeResponse {
  /// SQL rendering of the query that was optimized (seed-determined).
  std::string sql;
  double cost = 0.0;
  std::vector<RuleId> exercised_rules;  // ascending
  int32_t group_count = 0;
  int64_t expr_count = 0;
  bool budget_exhausted = false;
};

/// How a CompressSuiteRequest / CorrectnessRequest builds its test suite:
/// first `n_rules` logical rules as singleton targets (or all pairs over
/// them), k queries per target.
struct SuiteSpec {
  int32_t n_rules = 4;
  bool pairs = false;
  int32_t k = 2;
  GenerationMethod method = GenerationMethod::kPattern;
  int32_t max_trials = 2000;
  int32_t extra_ops = 0;
  uint64_t seed = 1;
};

enum class CompressionAlgorithm : uint8_t {
  kBaseline = 0,
  kSetMultiCover = 1,
  kTopKIndependent = 2,
  kNoSharingMatching = 3,
};

const char* CompressionAlgorithmToString(CompressionAlgorithm algorithm);

/// Generate a suite per `suite` and compress it with `algorithm`.
struct CompressSuiteRequest {
  SuiteSpec suite;
  CompressionAlgorithm algorithm = CompressionAlgorithm::kTopKIndependent;
  /// TopKIndependent only (Section 5.3.1).
  bool exploit_monotonicity = true;
  RequestOptions options;
};

struct CompressSuiteResponse {
  int32_t suite_queries = 0;
  /// Per target: query indices into the generated suite.
  std::vector<std::vector<int32_t>> assignment;
  double total_cost = 0.0;
  int64_t optimizer_calls = 0;
  int32_t degraded_targets = 0;
  int32_t estimated_edges = 0;
};

/// Generate a suite, compress it, and execute the compressed assignment
/// for correctness — the paper's full pipeline as one request.
struct CorrectnessRequest {
  SuiteSpec suite;
  CompressionAlgorithm algorithm = CompressionAlgorithm::kTopKIndependent;
  bool exploit_monotonicity = true;
  RequestOptions options;
};

struct ViolationSummary {
  int32_t target = -1;
  int32_t query = -1;
  std::string target_name;
  std::string sql;
  int64_t base_rows = 0;
  int64_t restricted_rows = 0;
};

struct CorrectnessResponse {
  int32_t plans_executed = 0;
  int32_t skipped_identical_plans = 0;
  int32_t skipped_unavailable = 0;
  std::vector<ViolationSummary> violations;
};

/// What to do with a SqlRequest after binding succeeds.
enum class SqlMode : uint8_t {
  /// Parse + bind only: report the bound tree's fingerprint, canonical SQL
  /// and operator count.
  kParseOnly = 0,
  /// Additionally optimize the bound tree (shared plan cache, budget).
  kOptimize = 1,
  /// Additionally run the correctness pipeline on the bound query: every
  /// logical rule the optimizer exercised becomes a singleton target,
  /// validated by executing Plan(q) against Plan(q, ¬rule).
  kCorrectness = 2,
};

const char* SqlModeToString(SqlMode mode);

/// Submit a SQL statement (SQL frontend, src/sql/) instead of a seed —
/// the first request type that ships a caller-chosen query over the wire
/// (ROADMAP item 2). The statement is parsed and bound against the
/// resident catalog; canonical renderer output (GenerateSql) round-trips
/// to the exact original tree.
struct SqlRequest {
  std::string sql;
  SqlMode mode = SqlMode::kParseOnly;
  RequestOptions options;
};

/// Deterministic like the other responses: no wall-clock fields, so the
/// same statement yields byte-identical payloads across transports. The
/// optimize fields are meaningful for kOptimize/kCorrectness, the
/// correctness fields for kCorrectness only; both groups are otherwise
/// zero/empty.
struct SqlResponse {
  /// TreeFingerprint of the bound logical tree — the round-trip witness:
  /// re-submitting `canonical_sql` reports the same fingerprint.
  uint64_t fingerprint = 0;
  std::string canonical_sql;
  int32_t operator_count = 0;
  // kOptimize / kCorrectness:
  double cost = 0.0;
  std::vector<RuleId> exercised_rules;  // ascending
  int32_t group_count = 0;
  int64_t expr_count = 0;
  bool budget_exhausted = false;
  // kCorrectness:
  int32_t plans_executed = 0;
  int32_t skipped_identical_plans = 0;
  int32_t skipped_unavailable = 0;
  std::vector<ViolationSummary> violations;
};

/// Load declarative .qtr rule specs (src/ruledsl/, docs/RULES.md) into the
/// resident registry, so a long-running daemon can ingest candidate rules
/// — hand-written or machine-generated — and immediately test them with
/// Sql/Correctness requests. Malformed or ill-bound specs are rejected
/// with their line:col diagnostics (kInvalidArgument); a name collision
/// with any resident rule is kAlreadyExists and nothing is registered
/// (each request is all-or-nothing).
struct LoadRulesRequest {
  /// Text of one or more .qtr rule specs.
  std::string text;
  /// Compile and validate only; report what would be registered.
  bool dry_run = false;
  RequestOptions options;
};

struct LoadRulesResponse {
  /// Ids assigned by the registry, in spec order (empty on dry_run).
  std::vector<RuleId> ids;
  /// Rule names in spec order.
  std::vector<std::string> names;
  /// Number of rules that compiled (== names.size()).
  int32_t compiled = 0;
};

/// List the resident rule registry — introspection for `qtfctl rules`.
struct ListRulesRequest {};

struct RuleInfo {
  RuleId id = -1;
  std::string name;
  /// RuleType as its wire value: 0 exploration, 1 implementation.
  uint8_t type = 0;
  /// PatternNode::ToString rendering, e.g. "Join[Inner](Any, Any)".
  std::string pattern;
  /// RuleOrigin as its wire value: 0 builtin, 1 dsl.
  uint8_t origin = 0;
};

struct ListRulesResponse {
  std::vector<RuleInfo> rules;
};

/// Snapshot of the resident framework's metrics registry — the service's
/// `/metrics` endpoint. Never shed by admission control, so the registry
/// stays observable exactly when the service is overloaded.
struct MetricsRequest {
  /// false (default): MetricsSnapshot JSON; true: the aligned text form.
  bool text = false;
};

struct MetricsResponse {
  std::string body;
};

/// The transport-neutral request/response surface: everything a transport
/// can carry, everything RuleTestService can execute.
using ServiceRequest =
    std::variant<GenerateRequest, OptimizeRequest, CompressSuiteRequest,
                 CorrectnessRequest, SqlRequest, LoadRulesRequest,
                 ListRulesRequest, MetricsRequest>;
using ServiceResponse =
    std::variant<GenerateResponse, OptimizeResponse, CompressSuiteResponse,
                 CorrectnessResponse, SqlResponse, LoadRulesResponse,
                 ListRulesResponse, MetricsResponse>;

}  // namespace service
}  // namespace qtf

#endif  // QTF_SERVICE_API_H_
