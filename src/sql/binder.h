#ifndef QTF_SQL_BINDER_H_
#define QTF_SQL_BINDER_H_

#include "catalog/catalog.h"
#include "common/result.h"
#include "logical/interner.h"
#include "logical/query.h"
#include "sql/ast.h"

namespace qtf {
namespace sql {

struct BinderOptions {
  /// When set, the bound tree is canonicalized through this interner, so
  /// the result lives in the same hash-consed space as trees built by the
  /// generator/optimizer (fingerprint-identical round trips compare
  /// interned pointers). Borrowed; may be null.
  NodeInterner* interner = nullptr;
};

/// Resolves a parsed statement against the catalog and emits a logical
/// Query (tree + fresh ColumnRegistry).
///
/// Binding rules (docs/sql.md has the full list):
///  - A select-item alias of the form `c<N>` *pins* the defined column to
///    ColumnId N — this is how the canonical SQL emitted by GenerateSql
///    round-trips to the exact original tree. Any other alias just names
///    the column; ids are then allocated densely in appearance order.
///  - Column references resolve lexically by name (qualified by table or
///    derived-table alias); TPC-H column names are globally unique so
///    unqualified ordinary SQL always resolves.
///  - `[NOT] EXISTS (SELECT ... FROM R WHERE p)` as a top-level WHERE
///    conjunct becomes a left-semi/anti join with predicate p (which may
///    reference both sides); the literal predicate `(1 = 1)` in a join ON
///    or EXISTS WHERE position denotes the algebra's TRUE (null) predicate.
///
/// All failures are kInvalidArgument carrying the 1-based line:column of
/// the offending AST node.
Result<Query> BindSql(const QueryExpr& query, const Catalog& catalog,
                      const BinderOptions& options = {});

}  // namespace sql
}  // namespace qtf

#endif  // QTF_SQL_BINDER_H_
