#ifndef QTF_SQL_RENDER_H_
#define QTF_SQL_RENDER_H_

#include <string>

#include "logical/query.h"

namespace qtf {

/// Renders a logical query tree as a SQL statement — the "Generate SQL"
/// component of the framework (paper Figure 2), functionally similar to the
/// interface of Elhemali & Giakoumakis [9].
///
/// Columns are aliased "c<id>" at every level so references are
/// unambiguous; every operator becomes a derived table; semi/anti joins
/// render as EXISTS/NOT EXISTS. The text is consumed by external engines
/// and re-parsed by the SQL frontend (sql/frontend.h), which binds it back
/// to a fingerprint-identical tree — the render→parse→bind round trip that
/// tests/test_sql_roundtrip.cc locks down.
std::string GenerateSql(const Query& query);

}  // namespace qtf

#endif  // QTF_SQL_RENDER_H_
