#ifndef QTF_SQL_TOKEN_H_
#define QTF_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace qtf {
namespace sql {

enum class TokenKind : uint8_t {
  kEnd = 0,
  kIdent,
  kIntLit,
  kDoubleLit,
  kStringLit,
  // Keywords (matched case-insensitively by the lexer).
  kSelect,
  kDistinct,
  kFrom,
  kWhere,
  kGroup,
  kBy,
  kAs,
  kAnd,
  kOr,
  kNot,
  kExists,
  kIs,
  kNull,
  kTrue,
  kFalse,
  kUnion,
  kAll,
  kInner,
  kJoin,
  kLeft,
  kOuter,
  kCross,
  kOn,
  // Punctuation and operators.
  kLParen,
  kRParen,
  kComma,
  kDot,
  kStar,  // '*': select-star, COUNT(*) or multiplication, by context
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kSlash,
};

const char* TokenKindToString(TokenKind kind);

/// One lexical token with its 1-based source position (for error messages
/// of the form "at <line>:<col>").
struct Token {
  TokenKind kind = TokenKind::kEnd;
  /// Identifier spelling (original case) or decoded string-literal value.
  std::string text;
  int64_t int_value = 0;
  double double_value = 0.0;
  int line = 1;
  int col = 1;
};

}  // namespace sql
}  // namespace qtf

#endif  // QTF_SQL_TOKEN_H_
