#include "sql/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>
#include <utility>

namespace qtf {
namespace sql {
namespace {

struct Keyword {
  const char* spelling;
  TokenKind kind;
};

constexpr Keyword kKeywords[] = {
    {"SELECT", TokenKind::kSelect}, {"DISTINCT", TokenKind::kDistinct},
    {"FROM", TokenKind::kFrom},     {"WHERE", TokenKind::kWhere},
    {"GROUP", TokenKind::kGroup},   {"BY", TokenKind::kBy},
    {"AS", TokenKind::kAs},         {"AND", TokenKind::kAnd},
    {"OR", TokenKind::kOr},         {"NOT", TokenKind::kNot},
    {"EXISTS", TokenKind::kExists}, {"IS", TokenKind::kIs},
    {"NULL", TokenKind::kNull},     {"TRUE", TokenKind::kTrue},
    {"FALSE", TokenKind::kFalse},   {"UNION", TokenKind::kUnion},
    {"ALL", TokenKind::kAll},       {"INNER", TokenKind::kInner},
    {"JOIN", TokenKind::kJoin},     {"LEFT", TokenKind::kLeft},
    {"OUTER", TokenKind::kOuter},   {"CROSS", TokenKind::kCross},
    {"ON", TokenKind::kOn},
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

std::string ToUpper(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(
      std::toupper(static_cast<unsigned char>(c))));
  return out;
}

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      QTF_RETURN_NOT_OK(SkipSpaceAndComments());
      Token token;
      token.line = line_;
      token.col = col_;
      if (AtEnd()) {
        token.kind = TokenKind::kEnd;
        tokens.push_back(std::move(token));
        return tokens;
      }
      QTF_RETURN_NOT_OK(Next(&token));
      tokens.push_back(std::move(token));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  Status Error(int line, int col, const std::string& message) const {
    return Status::InvalidArgument("SQL lex error at " + std::to_string(line) +
                                   ":" + std::to_string(col) + ": " + message);
  }

  Status SkipSpaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '-' && Peek(1) == '-') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else if (c == '/' && Peek(1) == '*') {
        const int line = line_, col = col_;
        Advance();
        Advance();
        bool closed = false;
        while (!AtEnd()) {
          if (Peek() == '*' && Peek(1) == '/') {
            Advance();
            Advance();
            closed = true;
            break;
          }
          Advance();
        }
        if (!closed) return Error(line, col, "unterminated block comment");
      } else {
        break;
      }
    }
    return Status::OK();
  }

  Status Next(Token* token) {
    const char c = Peek();
    if (IsIdentStart(c)) return LexIdent(token);
    if (IsDigit(c)) return LexNumber(token);
    if (c == '\'') return LexString(token);
    return LexOperator(token);
  }

  Status LexIdent(Token* token) {
    const size_t start = pos_;
    while (!AtEnd() && IsIdentChar(Peek())) Advance();
    std::string_view spelling = input_.substr(start, pos_ - start);
    const std::string upper = ToUpper(spelling);
    for (const Keyword& kw : kKeywords) {
      if (upper == kw.spelling) {
        token->kind = kw.kind;
        token->text = kw.spelling;
        return Status::OK();
      }
    }
    token->kind = TokenKind::kIdent;
    token->text = std::string(spelling);
    return Status::OK();
  }

  Status LexNumber(Token* token) {
    const size_t start = pos_;
    while (!AtEnd() && IsDigit(Peek())) Advance();
    bool is_double = false;
    if (Peek() == '.' && IsDigit(Peek(1))) {
      is_double = true;
      Advance();
      while (!AtEnd() && IsDigit(Peek())) Advance();
    }
    if (Peek() == 'e' || Peek() == 'E') {
      size_t ahead = 1;
      if (Peek(1) == '+' || Peek(1) == '-') ahead = 2;
      if (IsDigit(Peek(ahead))) {
        is_double = true;
        while (ahead-- > 0) Advance();
        while (!AtEnd() && IsDigit(Peek())) Advance();
      }
    }
    const std::string text(input_.substr(start, pos_ - start));
    errno = 0;
    if (is_double) {
      token->kind = TokenKind::kDoubleLit;
      token->double_value = std::strtod(text.c_str(), nullptr);
      if (errno == ERANGE) {
        return Error(token->line, token->col,
                     "double literal out of range: " + text);
      }
    } else {
      token->kind = TokenKind::kIntLit;
      token->int_value = std::strtoll(text.c_str(), nullptr, 10);
      if (errno == ERANGE) {
        return Error(token->line, token->col,
                     "integer literal out of range: " + text);
      }
    }
    return Status::OK();
  }

  Status LexString(Token* token) {
    Advance();  // opening quote
    std::string value;
    while (true) {
      if (AtEnd()) {
        return Error(token->line, token->col, "unterminated string literal");
      }
      char c = Advance();
      if (c == '\'') {
        if (Peek() == '\'') {
          value.push_back('\'');
          Advance();
        } else {
          break;
        }
      } else {
        value.push_back(c);
      }
    }
    token->kind = TokenKind::kStringLit;
    token->text = std::move(value);
    return Status::OK();
  }

  Status LexOperator(Token* token) {
    const char c = Advance();
    switch (c) {
      case '(': token->kind = TokenKind::kLParen; return Status::OK();
      case ')': token->kind = TokenKind::kRParen; return Status::OK();
      case ',': token->kind = TokenKind::kComma; return Status::OK();
      case '.': token->kind = TokenKind::kDot; return Status::OK();
      case '*': token->kind = TokenKind::kStar; return Status::OK();
      case '+': token->kind = TokenKind::kPlus; return Status::OK();
      case '-': token->kind = TokenKind::kMinus; return Status::OK();
      case '/': token->kind = TokenKind::kSlash; return Status::OK();
      case '=': token->kind = TokenKind::kEq; return Status::OK();
      case '<':
        if (Peek() == '>') {
          Advance();
          token->kind = TokenKind::kNe;
        } else if (Peek() == '=') {
          Advance();
          token->kind = TokenKind::kLe;
        } else {
          token->kind = TokenKind::kLt;
        }
        return Status::OK();
      case '>':
        if (Peek() == '=') {
          Advance();
          token->kind = TokenKind::kGe;
        } else {
          token->kind = TokenKind::kGt;
        }
        return Status::OK();
      case '!':
        if (Peek() == '=') {
          Advance();
          token->kind = TokenKind::kNe;
          return Status::OK();
        }
        return Error(token->line, token->col, "stray '!'");
      default:
        return Error(token->line, token->col,
                     std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "end of input";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kIntLit: return "integer literal";
    case TokenKind::kDoubleLit: return "double literal";
    case TokenKind::kStringLit: return "string literal";
    case TokenKind::kSelect: return "SELECT";
    case TokenKind::kDistinct: return "DISTINCT";
    case TokenKind::kFrom: return "FROM";
    case TokenKind::kWhere: return "WHERE";
    case TokenKind::kGroup: return "GROUP";
    case TokenKind::kBy: return "BY";
    case TokenKind::kAs: return "AS";
    case TokenKind::kAnd: return "AND";
    case TokenKind::kOr: return "OR";
    case TokenKind::kNot: return "NOT";
    case TokenKind::kExists: return "EXISTS";
    case TokenKind::kIs: return "IS";
    case TokenKind::kNull: return "NULL";
    case TokenKind::kTrue: return "TRUE";
    case TokenKind::kFalse: return "FALSE";
    case TokenKind::kUnion: return "UNION";
    case TokenKind::kAll: return "ALL";
    case TokenKind::kInner: return "INNER";
    case TokenKind::kJoin: return "JOIN";
    case TokenKind::kLeft: return "LEFT";
    case TokenKind::kOuter: return "OUTER";
    case TokenKind::kCross: return "CROSS";
    case TokenKind::kOn: return "ON";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'<>'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kSlash: return "'/'";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(std::string_view input) {
  Lexer lexer(input);
  return lexer.Run();
}

}  // namespace sql
}  // namespace qtf
