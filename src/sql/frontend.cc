#include "sql/frontend.h"

#include <memory>
#include <utility>

#include "sql/ast.h"
#include "sql/parser.h"

namespace qtf {
namespace sql {
namespace {

void Bump(obs::MetricsRegistry* metrics, const char* name) {
  if (metrics != nullptr) metrics->counter(name)->Increment();
}

}  // namespace

Result<Query> SqlFrontend::Parse(std::string_view input) const {
  auto parsed = ParseSql(input);
  if (!parsed.ok()) {
    Bump(options_.metrics, "qtf.sql.parse_errors");
    return parsed.status();
  }
  BinderOptions binder_options;
  binder_options.interner = options_.interner;
  auto bound = BindSql(**parsed, *catalog_, binder_options);
  if (!bound.ok()) {
    Bump(options_.metrics, "qtf.sql.bind_errors");
    return bound.status();
  }
  Bump(options_.metrics, "qtf.sql.parsed");
  return std::move(bound).value();
}

}  // namespace sql
}  // namespace qtf
