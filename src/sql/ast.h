#ifndef QTF_SQL_AST_H_
#define QTF_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "logical/ops.h"
#include "sql/token.h"

namespace qtf {
namespace sql {

/// 1-based source position attached to every AST node so binder errors can
/// point at the offending text.
struct Pos {
  int line = 1;
  int col = 1;
};

struct QueryExpr;

enum class SqlExprKind : uint8_t {
  kIdent = 0,   // column reference, optionally qualified
  kIntLit,
  kDoubleLit,
  kStringLit,
  kBoolLit,
  kNullLit,
  kCompare,     // binary comparison
  kAnd,
  kOr,
  kNot,
  kArith,       // binary arithmetic
  kIsNull,      // x IS NULL / x IS NOT NULL (negated)
  kExists,      // [NOT] EXISTS (subquery)
  kFuncCall,    // aggregate call; `name` holds the function
};

/// Scalar-expression parse node. One struct for every kind keeps the
/// recursive-descent parser and the binder's dispatch simple; unused
/// fields stay defaulted.
struct SqlExpr {
  SqlExprKind kind = SqlExprKind::kIdent;
  Pos pos;
  /// Height of this subtree (leaf = 1). Maintained by the parser, which
  /// rejects statements past a fixed cap so recursive consumers (binder,
  /// destructors) run on bounded stack no matter what the input was.
  int depth = 1;
  std::string qualifier;  // kIdent: "t" of "t.c"; empty when unqualified
  std::string name;       // kIdent: column; kFuncCall: function name
  int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;
  bool bool_value = false;
  CompareOp compare_op = CompareOp::kEq;
  ArithOp arith_op = ArithOp::kAdd;
  /// kIsNull: IS NOT NULL; kExists: NOT EXISTS.
  bool negated = false;
  /// Operands (two for kCompare/kAnd/kOr/kArith, one for kNot/kIsNull) or
  /// function arguments (empty for COUNT(*), marked by `star_arg`).
  std::vector<std::unique_ptr<SqlExpr>> children;
  bool star_arg = false;  // kFuncCall: COUNT(*)
  std::unique_ptr<QueryExpr> subquery;  // kExists
};

using SqlExprPtr = std::unique_ptr<SqlExpr>;

/// One item of a select list; `star` stands for the whole-list '*' (a
/// select list is either exactly one star item or expression items).
struct SelectItem {
  Pos pos;
  bool star = false;
  SqlExprPtr expr;
  std::string alias;  // empty when unaliased
};

enum class TableRefKind : uint8_t { kBaseTable = 0, kDerived, kJoin };

struct TableRef {
  TableRefKind kind = TableRefKind::kBaseTable;
  Pos pos;
  int depth = 1;  // see SqlExpr::depth
  std::string table_name;  // kBaseTable
  std::string alias;       // kBaseTable / kDerived; empty when unaliased
  std::unique_ptr<QueryExpr> derived;  // kDerived
  // kJoin:
  JoinKind join_kind = JoinKind::kInner;  // only kInner / kLeftOuter in text
  std::unique_ptr<TableRef> left;
  std::unique_ptr<TableRef> right;
  SqlExprPtr on;  // nullptr for CROSS JOIN / comma join
};

/// One SELECT block (no set operators).
struct SelectCore {
  Pos pos;
  int depth = 1;  // see SqlExpr::depth
  bool distinct = false;
  std::vector<SelectItem> items;
  std::unique_ptr<TableRef> from;  // nullptr when no FROM clause
  SqlExprPtr where;
  std::vector<SqlExprPtr> group_by;
};

/// A query expression: one or more SELECT blocks joined by UNION ALL
/// (left-associative).
struct QueryExpr {
  Pos pos;
  int depth = 1;  // see SqlExpr::depth
  std::vector<std::unique_ptr<SelectCore>> branches;
};

}  // namespace sql
}  // namespace qtf

#endif  // QTF_SQL_AST_H_
