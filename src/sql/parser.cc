#include "sql/parser.h"

#include <string>
#include <utility>
#include <vector>

#include "sql/lexer.h"

namespace qtf {
namespace sql {
namespace {

/// Bound on parser recursion. Far above anything the renderer emits for
/// real trees, low enough that a pathological input (e.g. megabytes of
/// '(') errors instead of overflowing the stack.
constexpr int kMaxDepth = 500;

/// Bound on the height of the constructed AST. Recursion alone does not
/// bound it: left-associative chains (`1 AND 1 AND ...`) grow the tree in
/// a loop, one level per token, without recursing. Everything that later
/// walks the AST recursively (binder, destructors) relies on this cap.
constexpr int kMaxAstDepth = 1000;

int MaxDepth(int a, int b) { return a > b ? a : b; }

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<QueryExpr>> Run() {
    QTF_ASSIGN_OR_RETURN(std::unique_ptr<QueryExpr> query, ParseQueryExpr());
    if (!At(TokenKind::kEnd)) {
      return ErrorHere("expected end of input");
    }
    return query;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  bool At(TokenKind kind) const { return Cur().kind == kind; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Accept(TokenKind kind) {
    if (!At(kind)) return false;
    ++pos_;
    return true;
  }

  Pos Here() const { return Pos{Cur().line, Cur().col}; }

  Status ErrorHere(const std::string& message) const {
    return Status::InvalidArgument(
        "SQL parse error at " + std::to_string(Cur().line) + ":" +
        std::to_string(Cur().col) + ": " + message + ", got " +
        TokenKindToString(Cur().kind));
  }

  Status Expect(TokenKind kind, const char* context) {
    if (Accept(kind)) return Status::OK();
    return ErrorHere(std::string("expected ") + TokenKindToString(kind) +
                     " " + context);
  }

  /// RAII-free depth guard: call at the top of each recursive production.
  Status Descend() {
    if (++depth_ > kMaxDepth) {
      return Status::InvalidArgument(
          "SQL parse error at " + std::to_string(Cur().line) + ":" +
          std::to_string(Cur().col) + ": nesting deeper than " +
          std::to_string(kMaxDepth));
    }
    return Status::OK();
  }
  void Ascend() { --depth_; }

  Status CheckAstDepth(int depth, Pos pos) const {
    if (depth <= kMaxAstDepth) return Status::OK();
    return Status::InvalidArgument(
        "SQL parse error at " + std::to_string(pos.line) + ":" +
        std::to_string(pos.col) + ": statement nests deeper than " +
        std::to_string(kMaxAstDepth));
  }

  Result<std::unique_ptr<QueryExpr>> ParseQueryExpr() {
    QTF_RETURN_NOT_OK(Descend());
    auto query = std::make_unique<QueryExpr>();
    query->pos = Here();
    QTF_ASSIGN_OR_RETURN(std::unique_ptr<SelectCore> first, ParseSelectCore());
    query->branches.push_back(std::move(first));
    while (At(TokenKind::kUnion)) {
      Advance();
      QTF_RETURN_NOT_OK(Expect(TokenKind::kAll, "after UNION"));
      QTF_ASSIGN_OR_RETURN(std::unique_ptr<SelectCore> branch,
                           ParseSelectCore());
      query->branches.push_back(std::move(branch));
    }
    for (const auto& branch : query->branches) {
      query->depth = MaxDepth(query->depth, branch->depth + 1);
    }
    QTF_RETURN_NOT_OK(CheckAstDepth(query->depth, query->pos));
    Ascend();
    return query;
  }

  Result<std::unique_ptr<SelectCore>> ParseSelectCore() {
    QTF_RETURN_NOT_OK(Descend());
    auto core = std::make_unique<SelectCore>();
    core->pos = Here();
    QTF_RETURN_NOT_OK(Expect(TokenKind::kSelect, "to start a query"));
    core->distinct = Accept(TokenKind::kDistinct);
    QTF_RETURN_NOT_OK(ParseSelectList(core.get()));
    if (Accept(TokenKind::kFrom)) {
      QTF_ASSIGN_OR_RETURN(core->from, ParseFromClause());
    }
    if (Accept(TokenKind::kWhere)) {
      QTF_ASSIGN_OR_RETURN(core->where, ParseExpr());
    }
    if (Accept(TokenKind::kGroup)) {
      QTF_RETURN_NOT_OK(Expect(TokenKind::kBy, "after GROUP"));
      do {
        QTF_ASSIGN_OR_RETURN(SqlExprPtr expr, ParseExpr());
        core->group_by.push_back(std::move(expr));
      } while (Accept(TokenKind::kComma));
    }
    for (const SelectItem& item : core->items) {
      if (item.expr) core->depth = MaxDepth(core->depth, item.expr->depth + 1);
    }
    if (core->from) core->depth = MaxDepth(core->depth, core->from->depth + 1);
    if (core->where) {
      core->depth = MaxDepth(core->depth, core->where->depth + 1);
    }
    for (const SqlExprPtr& expr : core->group_by) {
      core->depth = MaxDepth(core->depth, expr->depth + 1);
    }
    QTF_RETURN_NOT_OK(CheckAstDepth(core->depth, core->pos));
    Ascend();
    return core;
  }

  Status ParseSelectList(SelectCore* core) {
    if (At(TokenKind::kStar)) {
      SelectItem item;
      item.pos = Here();
      item.star = true;
      Advance();
      core->items.push_back(std::move(item));
      return Status::OK();
    }
    do {
      SelectItem item;
      item.pos = Here();
      QTF_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (Accept(TokenKind::kAs)) {
        if (!At(TokenKind::kIdent)) {
          return ErrorHere("expected alias identifier after AS");
        }
        item.alias = Advance().text;
      } else if (At(TokenKind::kIdent)) {
        item.alias = Advance().text;  // bare alias: SELECT x y
      }
      core->items.push_back(std::move(item));
    } while (Accept(TokenKind::kComma));
    return Status::OK();
  }

  Result<std::unique_ptr<TableRef>> ParseFromClause() {
    QTF_ASSIGN_OR_RETURN(std::unique_ptr<TableRef> ref, ParseJoinChain());
    // Comma-separated FROM list: each further item is a cross join.
    while (Accept(TokenKind::kComma)) {
      QTF_ASSIGN_OR_RETURN(std::unique_ptr<TableRef> right, ParseJoinChain());
      auto join = std::make_unique<TableRef>();
      join->kind = TableRefKind::kJoin;
      join->pos = ref->pos;
      join->join_kind = JoinKind::kInner;
      join->depth = MaxDepth(ref->depth, right->depth) + 1;
      join->left = std::move(ref);
      join->right = std::move(right);
      QTF_RETURN_NOT_OK(CheckAstDepth(join->depth, join->pos));
      ref = std::move(join);
    }
    return ref;
  }

  Result<std::unique_ptr<TableRef>> ParseJoinChain() {
    QTF_ASSIGN_OR_RETURN(std::unique_ptr<TableRef> left, ParsePrimaryRef());
    while (true) {
      JoinKind kind;
      bool has_on = true;
      if (At(TokenKind::kJoin) || At(TokenKind::kInner)) {
        Accept(TokenKind::kInner);
        QTF_RETURN_NOT_OK(Expect(TokenKind::kJoin, "after INNER"));
        kind = JoinKind::kInner;
      } else if (At(TokenKind::kLeft)) {
        Advance();
        Accept(TokenKind::kOuter);
        QTF_RETURN_NOT_OK(Expect(TokenKind::kJoin, "after LEFT [OUTER]"));
        kind = JoinKind::kLeftOuter;
      } else if (At(TokenKind::kCross)) {
        Advance();
        QTF_RETURN_NOT_OK(Expect(TokenKind::kJoin, "after CROSS"));
        kind = JoinKind::kInner;
        has_on = false;
      } else {
        break;
      }
      auto join = std::make_unique<TableRef>();
      join->kind = TableRefKind::kJoin;
      join->pos = left->pos;
      join->join_kind = kind;
      join->left = std::move(left);
      QTF_ASSIGN_OR_RETURN(join->right, ParsePrimaryRef());
      if (has_on) {
        QTF_RETURN_NOT_OK(Expect(TokenKind::kOn, "after join operand"));
        QTF_ASSIGN_OR_RETURN(join->on, ParseExpr());
      }
      join->depth = MaxDepth(join->left->depth, join->right->depth);
      if (join->on) join->depth = MaxDepth(join->depth, join->on->depth);
      ++join->depth;
      QTF_RETURN_NOT_OK(CheckAstDepth(join->depth, join->pos));
      left = std::move(join);
    }
    return left;
  }

  Result<std::unique_ptr<TableRef>> ParsePrimaryRef() {
    QTF_RETURN_NOT_OK(Descend());
    auto ref = std::make_unique<TableRef>();
    ref->pos = Here();
    if (Accept(TokenKind::kLParen)) {
      ref->kind = TableRefKind::kDerived;
      QTF_ASSIGN_OR_RETURN(ref->derived, ParseQueryExpr());
      QTF_RETURN_NOT_OK(Expect(TokenKind::kRParen, "to close derived table"));
      ref->depth = ref->derived->depth + 1;
    } else if (At(TokenKind::kIdent)) {
      ref->kind = TableRefKind::kBaseTable;
      ref->table_name = Advance().text;
    } else {
      Ascend();
      return ErrorHere("expected table name or derived table");
    }
    if (Accept(TokenKind::kAs)) {
      if (!At(TokenKind::kIdent)) {
        Ascend();
        return ErrorHere("expected alias identifier after AS");
      }
      ref->alias = Advance().text;
    } else if (At(TokenKind::kIdent)) {
      ref->alias = Advance().text;
    } else if (ref->kind == TableRefKind::kDerived) {
      Ascend();
      return ErrorHere("derived table requires an alias");
    }
    Ascend();
    return ref;
  }

  // --- Expressions, lowest to highest precedence: OR, AND, NOT,
  // comparison / IS NULL, additive, multiplicative, unary, primary. ---

  Result<SqlExprPtr> ParseExpr() { return ParseOr(); }

  Result<SqlExprPtr> ParseOr() {
    QTF_RETURN_NOT_OK(Descend());
    QTF_ASSIGN_OR_RETURN(SqlExprPtr left, ParseAnd());
    while (At(TokenKind::kOr)) {
      Pos pos = Here();
      Advance();
      QTF_ASSIGN_OR_RETURN(SqlExprPtr right, ParseAnd());
      left = MakeBinary(SqlExprKind::kOr, pos, std::move(left),
                        std::move(right));
      QTF_RETURN_NOT_OK(CheckAstDepth(left->depth, pos));
    }
    Ascend();
    return left;
  }

  Result<SqlExprPtr> ParseAnd() {
    QTF_ASSIGN_OR_RETURN(SqlExprPtr left, ParseNot());
    while (At(TokenKind::kAnd)) {
      Pos pos = Here();
      Advance();
      QTF_ASSIGN_OR_RETURN(SqlExprPtr right, ParseNot());
      left = MakeBinary(SqlExprKind::kAnd, pos, std::move(left),
                        std::move(right));
      QTF_RETURN_NOT_OK(CheckAstDepth(left->depth, pos));
    }
    return left;
  }

  Result<SqlExprPtr> ParseNot() {
    QTF_RETURN_NOT_OK(Descend());
    if (At(TokenKind::kNot)) {
      Pos pos = Here();
      Advance();
      QTF_ASSIGN_OR_RETURN(SqlExprPtr operand, ParseNot());
      Ascend();
      if (operand->kind == SqlExprKind::kExists) {
        operand->negated = !operand->negated;
        return operand;
      }
      auto expr = std::make_unique<SqlExpr>();
      expr->kind = SqlExprKind::kNot;
      expr->pos = pos;
      expr->depth = operand->depth + 1;
      expr->children.push_back(std::move(operand));
      QTF_RETURN_NOT_OK(CheckAstDepth(expr->depth, pos));
      return SqlExprPtr(std::move(expr));
    }
    Result<SqlExprPtr> result = ParseComparison();
    Ascend();
    return result;
  }

  Result<SqlExprPtr> ParseComparison() {
    QTF_ASSIGN_OR_RETURN(SqlExprPtr left, ParseAdditive());
    if (At(TokenKind::kIs)) {
      Pos pos = Here();
      Advance();
      const bool negated = Accept(TokenKind::kNot);
      QTF_RETURN_NOT_OK(Expect(TokenKind::kNull, "after IS [NOT]"));
      auto expr = std::make_unique<SqlExpr>();
      expr->kind = SqlExprKind::kIsNull;
      expr->pos = pos;
      expr->negated = negated;
      expr->depth = left->depth + 1;
      expr->children.push_back(std::move(left));
      return SqlExprPtr(std::move(expr));
    }
    CompareOp op;
    switch (Cur().kind) {
      case TokenKind::kEq: op = CompareOp::kEq; break;
      case TokenKind::kNe: op = CompareOp::kNe; break;
      case TokenKind::kLt: op = CompareOp::kLt; break;
      case TokenKind::kLe: op = CompareOp::kLe; break;
      case TokenKind::kGt: op = CompareOp::kGt; break;
      case TokenKind::kGe: op = CompareOp::kGe; break;
      default:
        return left;
    }
    Pos pos = Here();
    Advance();
    QTF_ASSIGN_OR_RETURN(SqlExprPtr right, ParseAdditive());
    SqlExprPtr expr = MakeBinary(SqlExprKind::kCompare, pos, std::move(left),
                                 std::move(right));
    expr->compare_op = op;
    return expr;
  }

  Result<SqlExprPtr> ParseAdditive() {
    QTF_ASSIGN_OR_RETURN(SqlExprPtr left, ParseMultiplicative());
    while (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
      const ArithOp op =
          At(TokenKind::kPlus) ? ArithOp::kAdd : ArithOp::kSub;
      Pos pos = Here();
      Advance();
      QTF_ASSIGN_OR_RETURN(SqlExprPtr right, ParseMultiplicative());
      SqlExprPtr expr = MakeBinary(SqlExprKind::kArith, pos, std::move(left),
                                   std::move(right));
      expr->arith_op = op;
      QTF_RETURN_NOT_OK(CheckAstDepth(expr->depth, pos));
      left = std::move(expr);
    }
    return left;
  }

  Result<SqlExprPtr> ParseMultiplicative() {
    QTF_ASSIGN_OR_RETURN(SqlExprPtr left, ParseUnary());
    while (At(TokenKind::kStar) || At(TokenKind::kSlash)) {
      const ArithOp op =
          At(TokenKind::kStar) ? ArithOp::kMul : ArithOp::kDiv;
      Pos pos = Here();
      Advance();
      QTF_ASSIGN_OR_RETURN(SqlExprPtr right, ParseUnary());
      SqlExprPtr expr = MakeBinary(SqlExprKind::kArith, pos, std::move(left),
                                   std::move(right));
      expr->arith_op = op;
      QTF_RETURN_NOT_OK(CheckAstDepth(expr->depth, pos));
      left = std::move(expr);
    }
    return left;
  }

  Result<SqlExprPtr> ParseUnary() {
    QTF_RETURN_NOT_OK(Descend());
    if (At(TokenKind::kMinus)) {
      Pos pos = Here();
      Advance();
      // The algebra has no negate operator, so '-' folds into numeric
      // literals only.
      if (At(TokenKind::kIntLit)) {
        const Token& tok = Advance();
        auto expr = std::make_unique<SqlExpr>();
        expr->kind = SqlExprKind::kIntLit;
        expr->pos = pos;
        expr->int_value = -tok.int_value;
        Ascend();
        return SqlExprPtr(std::move(expr));
      }
      if (At(TokenKind::kDoubleLit)) {
        const Token& tok = Advance();
        auto expr = std::make_unique<SqlExpr>();
        expr->kind = SqlExprKind::kDoubleLit;
        expr->pos = pos;
        expr->double_value = -tok.double_value;
        Ascend();
        return SqlExprPtr(std::move(expr));
      }
      Ascend();
      return ErrorHere("'-' is only supported on numeric literals");
    }
    Result<SqlExprPtr> result = ParsePrimary();
    Ascend();
    return result;
  }

  Result<SqlExprPtr> ParsePrimary() {
    auto expr = std::make_unique<SqlExpr>();
    expr->pos = Here();
    switch (Cur().kind) {
      case TokenKind::kIntLit:
        expr->kind = SqlExprKind::kIntLit;
        expr->int_value = Advance().int_value;
        return SqlExprPtr(std::move(expr));
      case TokenKind::kDoubleLit:
        expr->kind = SqlExprKind::kDoubleLit;
        expr->double_value = Advance().double_value;
        return SqlExprPtr(std::move(expr));
      case TokenKind::kStringLit:
        expr->kind = SqlExprKind::kStringLit;
        expr->string_value = Advance().text;
        return SqlExprPtr(std::move(expr));
      case TokenKind::kTrue:
      case TokenKind::kFalse:
        expr->kind = SqlExprKind::kBoolLit;
        expr->bool_value = At(TokenKind::kTrue);
        Advance();
        return SqlExprPtr(std::move(expr));
      case TokenKind::kNull:
        expr->kind = SqlExprKind::kNullLit;
        Advance();
        return SqlExprPtr(std::move(expr));
      case TokenKind::kExists: {
        Advance();
        expr->kind = SqlExprKind::kExists;
        QTF_RETURN_NOT_OK(Expect(TokenKind::kLParen, "after EXISTS"));
        QTF_ASSIGN_OR_RETURN(expr->subquery, ParseQueryExpr());
        QTF_RETURN_NOT_OK(
            Expect(TokenKind::kRParen, "to close EXISTS subquery"));
        expr->depth = expr->subquery->depth + 1;
        return SqlExprPtr(std::move(expr));
      }
      case TokenKind::kLParen: {
        Advance();
        QTF_ASSIGN_OR_RETURN(SqlExprPtr inner, ParseExpr());
        QTF_RETURN_NOT_OK(Expect(TokenKind::kRParen, "to close '('"));
        return inner;
      }
      case TokenKind::kIdent: {
        const Token& first = Advance();
        if (At(TokenKind::kLParen)) {
          // Function call (aggregates; validated by the binder).
          Advance();
          expr->kind = SqlExprKind::kFuncCall;
          expr->name = first.text;
          if (Accept(TokenKind::kStar)) {
            expr->star_arg = true;
          } else if (!At(TokenKind::kRParen)) {
            do {
              QTF_ASSIGN_OR_RETURN(SqlExprPtr arg, ParseExpr());
              expr->children.push_back(std::move(arg));
            } while (Accept(TokenKind::kComma));
          }
          QTF_RETURN_NOT_OK(
              Expect(TokenKind::kRParen, "to close function call"));
          for (const SqlExprPtr& arg : expr->children) {
            expr->depth = MaxDepth(expr->depth, arg->depth + 1);
          }
          return SqlExprPtr(std::move(expr));
        }
        expr->kind = SqlExprKind::kIdent;
        if (At(TokenKind::kDot)) {
          Advance();
          if (!At(TokenKind::kIdent)) {
            return ErrorHere("expected column name after '.'");
          }
          expr->qualifier = first.text;
          expr->name = Advance().text;
        } else {
          expr->name = first.text;
        }
        return SqlExprPtr(std::move(expr));
      }
      default:
        return ErrorHere("expected expression");
    }
  }

  static SqlExprPtr MakeBinary(SqlExprKind kind, Pos pos, SqlExprPtr left,
                               SqlExprPtr right) {
    auto expr = std::make_unique<SqlExpr>();
    expr->kind = kind;
    expr->pos = pos;
    expr->depth = MaxDepth(left->depth, right->depth) + 1;
    expr->children.push_back(std::move(left));
    expr->children.push_back(std::move(right));
    return expr;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<std::unique_ptr<QueryExpr>> ParseSql(std::string_view input) {
  QTF_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.Run();
}

}  // namespace sql
}  // namespace qtf
