#ifndef QTF_SQL_FRONTEND_H_
#define QTF_SQL_FRONTEND_H_

#include <string_view>

#include "catalog/catalog.h"
#include "common/result.h"
#include "logical/interner.h"
#include "logical/query.h"
#include "obs/metrics.h"
#include "sql/binder.h"

namespace qtf {
namespace sql {

struct SqlFrontendOptions {
  /// Canonicalizes bound trees into the optimizer's hash-consed space.
  /// Borrowed; may be null (trees then stand alone).
  NodeInterner* interner = nullptr;
  /// Receives qtf.sql.{parsed,parse_errors,bind_errors}. Borrowed; may be
  /// null.
  obs::MetricsRegistry* metrics = nullptr;
};

/// SQL text → logical Query, closing the render→parse→bind loop: for every
/// tree t the generator produces, Parse(GenerateSql(t)) binds to a tree
/// with the same TreeFingerprint as t (tests/test_sql_roundtrip.cc proves
/// this over the full rule-edge corpus). Ordinary SELECT statements over
/// the catalog's tables bind too — see docs/sql.md for the grammar subset.
///
/// Thread-safe: Parse is const and every call works on its own parser and
/// registry state (the interner and metrics registry are themselves
/// thread-safe), so one frontend can serve concurrent service requests.
class SqlFrontend {
 public:
  SqlFrontend(const Catalog* catalog, const SqlFrontendOptions& options = {})
      : catalog_(catalog), options_(options) {
    QTF_CHECK(catalog_ != nullptr);
  }
  SqlFrontend(const SqlFrontend&) = delete;
  SqlFrontend& operator=(const SqlFrontend&) = delete;

  /// Parses and binds one SQL statement. All failures are kInvalidArgument
  /// carrying a 1-based line:column; no input crashes the frontend.
  Result<Query> Parse(std::string_view input) const;

 private:
  const Catalog* catalog_;
  SqlFrontendOptions options_;
};

}  // namespace sql
}  // namespace qtf

#endif  // QTF_SQL_FRONTEND_H_
