#ifndef QTF_SQL_LEXER_H_
#define QTF_SQL_LEXER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace qtf {
namespace sql {

/// Tokenizes one SQL statement. Keywords are case-insensitive; identifiers
/// keep their spelling. Handles '...' string literals with '' doubling,
/// integer and double literals (a '.' or exponent makes a double), `--`
/// line comments and `/* */` block comments. Every lexical error —
/// stray byte, unterminated string or comment, malformed or out-of-range
/// number — is kInvalidArgument naming the 1-based line:column, never a
/// crash, so arbitrary bytes can be thrown at it (the fuzz tests do).
/// The returned vector always ends with a kEnd token.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace sql
}  // namespace qtf

#endif  // QTF_SQL_LEXER_H_
