#ifndef QTF_SQL_PARSER_H_
#define QTF_SQL_PARSER_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "sql/ast.h"

namespace qtf {
namespace sql {

/// Parses one SQL statement into an AST. Recursive descent over the
/// grammar documented in docs/sql.md — the subset GenerateSql emits
/// (derived tables, EXISTS/NOT EXISTS, aggregates, UNION ALL) plus
/// ordinary SELECT/FROM/WHERE/GROUP BY text. Pure syntax: names are not
/// resolved here (that is the binder's job, sql/binder.h).
///
/// Every failure is kInvalidArgument carrying the 1-based line:column of
/// the offending token; no input crashes the parser (nesting depth is
/// bounded, so adversarial inputs cannot overflow the stack).
Result<std::unique_ptr<QueryExpr>> ParseSql(std::string_view input);

}  // namespace sql
}  // namespace qtf

#endif  // QTF_SQL_PARSER_H_
