#include "sql/render.h"

#include "common/str_util.h"

namespace qtf {
namespace {

std::string ColName(ColumnId id) { return "c" + std::to_string(id); }

/// Resolver that renders every column as its stable alias c<id>.
std::string AliasResolver(ColumnId id) { return ColName(id); }

class SqlRenderer {
 public:
  SqlRenderer() : resolver_(&AliasResolver) {}

  /// Returns a full SELECT statement for `op`.
  std::string Render(const LogicalOp& op) {
    switch (op.kind()) {
      case LogicalOpKind::kGet: {
        const auto& get = static_cast<const GetOp&>(op);
        std::vector<std::string> items;
        const auto& defs = get.table().columns();
        for (size_t i = 0; i < get.columns().size(); ++i) {
          items.push_back(defs[i].name + " AS " + ColName(get.columns()[i]));
        }
        return "SELECT " + Join(items, ", ") + " FROM " + get.table().name();
      }

      case LogicalOpKind::kSelect: {
        const auto& select = static_cast<const SelectOp&>(op);
        return "SELECT * FROM (" + Render(*op.child(0)) + ") " + NextAlias() +
               " WHERE " + select.predicate()->ToString(&resolver_);
      }

      case LogicalOpKind::kProject: {
        const auto& project = static_cast<const ProjectOp&>(op);
        std::vector<std::string> items;
        for (const ProjectItem& item : project.items()) {
          items.push_back(item.expr->ToString(&resolver_) + " AS " +
                          ColName(item.id));
        }
        return "SELECT " + Join(items, ", ") + " FROM (" +
               Render(*op.child(0)) + ") " + NextAlias();
      }

      case LogicalOpKind::kJoin: {
        const auto& join = static_cast<const JoinOp&>(op);
        std::string left = "(" + Render(*op.child(0)) + ") " + NextAlias();
        std::string right = "(" + Render(*op.child(1)) + ") " + NextAlias();
        std::string pred = join.predicate() == nullptr
                               ? "(1 = 1)"
                               : join.predicate()->ToString(&resolver_);
        switch (join.join_kind()) {
          case JoinKind::kInner:
            return "SELECT * FROM " + left + " INNER JOIN " + right + " ON " +
                   pred;
          case JoinKind::kLeftOuter:
            return "SELECT * FROM " + left + " LEFT OUTER JOIN " + right +
                   " ON " + pred;
          case JoinKind::kLeftSemi:
            return "SELECT * FROM " + left + " WHERE EXISTS (SELECT 1 FROM " +
                   right + " WHERE " + pred + ")";
          case JoinKind::kLeftAnti:
            return "SELECT * FROM " + left +
                   " WHERE NOT EXISTS (SELECT 1 FROM " + right + " WHERE " +
                   pred + ")";
        }
        return "";
      }

      case LogicalOpKind::kGroupByAgg: {
        const auto& agg = static_cast<const GroupByAggOp&>(op);
        std::vector<std::string> items;
        std::vector<std::string> groups;
        for (ColumnId id : agg.group_cols()) {
          items.push_back(ColName(id));
          groups.push_back(ColName(id));
        }
        for (const AggregateItem& item : agg.aggregates()) {
          items.push_back(item.call.ToString(&resolver_) + " AS " +
                          ColName(item.id));
        }
        std::string sql = "SELECT " + Join(items, ", ") + " FROM (" +
                          Render(*op.child(0)) + ") " + NextAlias();
        if (!groups.empty()) sql += " GROUP BY " + Join(groups, ", ");
        return sql;
      }

      case LogicalOpKind::kUnionAll: {
        const auto& u = static_cast<const UnionAllOp&>(op);
        std::vector<ColumnId> lcols = op.child(0)->OutputColumns();
        std::vector<ColumnId> rcols = op.child(1)->OutputColumns();
        std::vector<std::string> litems, ritems;
        for (size_t i = 0; i < u.output_ids().size(); ++i) {
          litems.push_back(ColName(lcols[i]) + " AS " +
                           ColName(u.output_ids()[i]));
          ritems.push_back(ColName(rcols[i]) + " AS " +
                           ColName(u.output_ids()[i]));
        }
        return "SELECT " + Join(litems, ", ") + " FROM (" +
               Render(*op.child(0)) + ") " + NextAlias() +
               " UNION ALL SELECT " + Join(ritems, ", ") + " FROM (" +
               Render(*op.child(1)) + ") " + NextAlias();
      }

      case LogicalOpKind::kDistinct:
        return "SELECT DISTINCT * FROM (" + Render(*op.child(0)) + ") " +
               NextAlias();

      case LogicalOpKind::kGroupRef:
        return "SELECT /* group " +
               std::to_string(
                   static_cast<const GroupRefOp&>(op).group_id()) +
               " */ *";
    }
    return "";
  }

 private:
  std::string NextAlias() { return "d" + std::to_string(alias_counter_++); }

  ColumnNameResolver resolver_;
  int alias_counter_ = 0;
};

}  // namespace

std::string GenerateSql(const Query& query) {
  QTF_CHECK(query.root != nullptr);
  SqlRenderer renderer;
  return renderer.Render(*query.root);
}

}  // namespace qtf
