#include "sql/binder.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "expr/aggregate.h"
#include "expr/expr.h"
#include "logical/column_registry.h"
#include "logical/ops.h"
#include "types/value.h"

namespace qtf {
namespace sql {
namespace {

/// Pinned column ids past this bound are treated as ordinary aliases, so a
/// hostile `AS c2000000000` cannot force a multi-gigabyte registry resize.
constexpr ColumnId kMaxPinnedColumnId = 1 << 20;

std::string ToUpper(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(
      std::toupper(static_cast<unsigned char>(c))));
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(
      std::tolower(static_cast<unsigned char>(c))));
  return out;
}

/// `c<digits>` → the digits as a ColumnId; anything else → -1. Only select
/// item aliases in this shape pin column identities (see binder.h).
ColumnId ParseCanonicalAlias(const std::string& alias) {
  if (alias.size() < 2 || alias[0] != 'c') return -1;
  int64_t value = 0;
  for (size_t i = 1; i < alias.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(alias[i]))) return -1;
    value = value * 10 + (alias[i] - '0');
    if (value > kMaxPinnedColumnId) return -1;
  }
  return static_cast<ColumnId>(value);
}

bool IsNumeric(ValueType type) {
  return type == ValueType::kInt64 || type == ValueType::kDouble;
}

/// The renderer prints a null join/EXISTS predicate (algebraic TRUE) as the
/// literal `(1 = 1)`; recognize that exact shape and map it back to null.
bool IsTautology(const SqlExpr& e) {
  return e.kind == SqlExprKind::kCompare && e.compare_op == CompareOp::kEq &&
         e.children.size() == 2 &&
         e.children[0]->kind == SqlExprKind::kIntLit &&
         e.children[0]->int_value == 1 &&
         e.children[1]->kind == SqlExprKind::kIntLit &&
         e.children[1]->int_value == 1;
}

bool ContainsExists(const SqlExpr& e) {
  if (e.kind == SqlExprKind::kExists) return true;
  for (const SqlExprPtr& child : e.children) {
    if (ContainsExists(*child)) return true;
  }
  return false;
}

void FlattenConjuncts(const SqlExpr& e, std::vector<const SqlExpr*>* out) {
  if (e.kind == SqlExprKind::kAnd) {
    FlattenConjuncts(*e.children[0], out);
    FlattenConjuncts(*e.children[1], out);
    return;
  }
  out->push_back(&e);
}

/// One column visible in a scope: where it came from (qualifier), what it
/// is called there, and its identity/type.
struct ScopeColumn {
  std::string qualifier;  // table / derived-table alias; may be empty
  std::string name;
  ColumnId id = -1;
  ValueType type = ValueType::kInt64;
};

using Scope = std::vector<ScopeColumn>;

/// A bound relational subtree plus its visible columns in output order.
struct BoundRel {
  LogicalOpPtr op;
  Scope columns;
};

class Binder {
 public:
  explicit Binder(const Catalog& catalog)
      : catalog_(catalog), registry_(std::make_shared<ColumnRegistry>()) {}

  Result<Query> Bind(const QueryExpr& query) {
    QTF_ASSIGN_OR_RETURN(BoundRel rel, BindQueryExpr(query));
    return Query{rel.op, registry_};
  }

 private:
  static Status BindError(Pos pos, const std::string& message) {
    return Status::InvalidArgument(
        "SQL bind error at " + std::to_string(pos.line) + ":" +
        std::to_string(pos.col) + ": " + message);
  }

  /// Registers an output column. A canonical `c<N>` alias pins the id; any
  /// other (or empty) alias allocates the next free id. `reg_name` is the
  /// name recorded in the registry (base-column name, alias, or synthetic).
  Result<ColumnId> DefineColumn(const std::string& alias,
                                const std::string& reg_name, ValueType type,
                                Pos pos) {
    const ColumnId pinned = ParseCanonicalAlias(alias);
    if (pinned >= 0) {
      if (!defined_.insert(pinned).second) {
        return BindError(pos, "duplicate definition of canonical column '" +
                                  alias + "'");
      }
      registry_->AllocateAt(pinned, reg_name, type);
      return pinned;
    }
    const ColumnId id = registry_->Allocate(reg_name, type);
    defined_.insert(id);
    return id;
  }

  Result<const ScopeColumn*> Resolve(const SqlExpr& ident,
                                     const Scope& scope) const {
    const ScopeColumn* found = nullptr;
    for (const ScopeColumn& col : scope) {
      if (col.name != ident.name) continue;
      if (!ident.qualifier.empty() && col.qualifier != ident.qualifier) {
        continue;
      }
      if (found != nullptr) {
        return BindError(ident.pos, "ambiguous column '" + ident.name + "'");
      }
      found = &col;
    }
    if (found == nullptr) {
      const std::string shown = ident.qualifier.empty()
                                    ? ident.name
                                    : ident.qualifier + "." + ident.name;
      return BindError(ident.pos, "unknown column '" + shown + "'");
    }
    return found;
  }

  // ---------------------------------------------------------------- scalar

  Result<ExprPtr> BindExpr(const SqlExpr& e, const Scope& scope) {
    switch (e.kind) {
      case SqlExprKind::kIdent: {
        QTF_ASSIGN_OR_RETURN(const ScopeColumn* col, Resolve(e, scope));
        return Col(col->id, col->type);
      }
      case SqlExprKind::kIntLit:
        return LitInt(e.int_value);
      case SqlExprKind::kDoubleLit:
        return LitDouble(e.double_value);
      case SqlExprKind::kStringLit:
        return LitString(e.string_value);
      case SqlExprKind::kBoolLit:
        return Lit(Value::Bool(e.bool_value));
      case SqlExprKind::kNullLit:
        return BindError(e.pos,
                         "NULL literal requires a typed context (use it as a "
                         "comparison operand)");
      case SqlExprKind::kCompare: {
        QTF_ASSIGN_OR_RETURN(
            auto operands,
            BindOperands(*e.children[0], *e.children[1], scope,
                         /*comparison=*/true));
        return Cmp(e.compare_op, std::move(operands.first),
                   std::move(operands.second));
      }
      case SqlExprKind::kAnd:
      case SqlExprKind::kOr: {
        QTF_ASSIGN_OR_RETURN(ExprPtr left, BindExpr(*e.children[0], scope));
        QTF_ASSIGN_OR_RETURN(ExprPtr right, BindExpr(*e.children[1], scope));
        if (left->type() != ValueType::kBool ||
            right->type() != ValueType::kBool) {
          return BindError(e.pos, std::string(e.kind == SqlExprKind::kAnd
                                                  ? "AND"
                                                  : "OR") +
                                      " requires boolean operands");
        }
        return e.kind == SqlExprKind::kAnd
                   ? And(std::move(left), std::move(right))
                   : Or(std::move(left), std::move(right));
      }
      case SqlExprKind::kNot: {
        QTF_ASSIGN_OR_RETURN(ExprPtr input, BindExpr(*e.children[0], scope));
        if (input->type() != ValueType::kBool) {
          return BindError(e.pos, "NOT requires a boolean operand");
        }
        return Not(std::move(input));
      }
      case SqlExprKind::kArith: {
        QTF_ASSIGN_OR_RETURN(
            auto operands,
            BindOperands(*e.children[0], *e.children[1], scope,
                         /*comparison=*/false));
        if (!IsNumeric(operands.first->type()) ||
            !IsNumeric(operands.second->type())) {
          return BindError(e.pos, "arithmetic requires numeric operands");
        }
        return Arith(e.arith_op, std::move(operands.first),
                     std::move(operands.second));
      }
      case SqlExprKind::kIsNull: {
        QTF_ASSIGN_OR_RETURN(ExprPtr input, BindExpr(*e.children[0], scope));
        ExprPtr test = IsNull(std::move(input));
        return e.negated ? Not(std::move(test)) : std::move(test);
      }
      case SqlExprKind::kExists:
        return BindError(e.pos,
                         "EXISTS is only supported as a top-level WHERE "
                         "conjunct");
      case SqlExprKind::kFuncCall:
        return BindError(e.pos,
                         "aggregate calls are only supported as whole select "
                         "items of a grouped query");
    }
    return BindError(e.pos, "unsupported expression");
  }

  /// Binds the two operands of a comparison or arithmetic node. NULL
  /// literals adopt the other side's type. Comparisons additionally coerce
  /// a *syntactic* integer literal to double when compared against a double
  /// (the generator only ever compares same-typed operands, so this never
  /// fires on canonical SQL and cannot perturb a round trip; arithmetic is
  /// left untouched because the algebra itself mixes int literals into
  /// double arithmetic).
  Result<std::pair<ExprPtr, ExprPtr>> BindOperands(const SqlExpr& l_ast,
                                                   const SqlExpr& r_ast,
                                                   const Scope& scope,
                                                   bool comparison) {
    const bool l_null = l_ast.kind == SqlExprKind::kNullLit;
    const bool r_null = r_ast.kind == SqlExprKind::kNullLit;
    if (l_null && r_null) {
      return BindError(l_ast.pos, "cannot compare NULL with NULL");
    }
    if (l_null || r_null) {
      QTF_ASSIGN_OR_RETURN(ExprPtr typed,
                           BindExpr(l_null ? r_ast : l_ast, scope));
      ExprPtr null_side = Lit(Value::Null(typed->type()));
      if (l_null) return std::make_pair(std::move(null_side), std::move(typed));
      return std::make_pair(std::move(typed), std::move(null_side));
    }
    QTF_ASSIGN_OR_RETURN(ExprPtr left, BindExpr(l_ast, scope));
    QTF_ASSIGN_OR_RETURN(ExprPtr right, BindExpr(r_ast, scope));
    if (comparison && left->type() != right->type()) {
      if (l_ast.kind == SqlExprKind::kIntLit &&
          right->type() == ValueType::kDouble) {
        left = LitDouble(static_cast<double>(l_ast.int_value));
      } else if (r_ast.kind == SqlExprKind::kIntLit &&
                 left->type() == ValueType::kDouble) {
        right = LitDouble(static_cast<double>(r_ast.int_value));
      }
    }
    if (comparison && left->type() != right->type()) {
      return BindError(l_ast.pos, "comparison operands have mismatched types");
    }
    return std::make_pair(std::move(left), std::move(right));
  }

  // ------------------------------------------------------------- relations

  Result<BoundRel> BindQueryExpr(const QueryExpr& query) {
    if (query.branches.size() == 1) {
      return BindSelectCore(*query.branches[0]);
    }
    if (query.branches.size() == 2) {
      QTF_ASSIGN_OR_RETURN(std::optional<BoundRel> canonical,
                           TryBindCanonicalUnion(query));
      if (canonical.has_value()) return *std::move(canonical);
    }
    // Generic left-associative UNION ALL fold with fresh output ids.
    QTF_ASSIGN_OR_RETURN(BoundRel acc, BindSelectCore(*query.branches[0]));
    for (size_t i = 1; i < query.branches.size(); ++i) {
      QTF_ASSIGN_OR_RETURN(BoundRel next, BindSelectCore(*query.branches[i]));
      if (next.columns.size() != acc.columns.size()) {
        return BindError(query.branches[i]->pos,
                         "UNION ALL branches have different column counts");
      }
      Scope out;
      std::vector<ColumnId> out_ids;
      for (size_t j = 0; j < acc.columns.size(); ++j) {
        if (acc.columns[j].type != next.columns[j].type) {
          return BindError(query.branches[i]->pos,
                           "UNION ALL branches have mismatched types at "
                           "position " + std::to_string(j + 1));
        }
        const ColumnId id =
            registry_->Allocate(acc.columns[j].name, acc.columns[j].type);
        defined_.insert(id);
        out_ids.push_back(id);
        out.push_back({"", acc.columns[j].name, id, acc.columns[j].type});
      }
      acc.op = std::make_shared<UnionAllOp>(acc.op, next.op,
                                            std::move(out_ids));
      acc.columns = std::move(out);
    }
    return acc;
  }

  /// The renderer prints UnionAll as two branches of the exact shape
  /// `SELECT <child col> AS c<out>, ... FROM (<child>) d<k>`. When both
  /// branches match that shape and every alias is canonical, rebuild the
  /// UnionAllOp with its original (pinned) output ids. Shape mismatches
  /// fall back to the generic fold (returns nullopt before any binding
  /// side effects); post-shape inconsistencies are hard errors.
  Result<std::optional<BoundRel>> TryBindCanonicalUnion(
      const QueryExpr& query) {
    for (const std::unique_ptr<SelectCore>& branch : query.branches) {
      if (branch->distinct || branch->where != nullptr ||
          !branch->group_by.empty() || branch->from == nullptr ||
          branch->from->kind != TableRefKind::kDerived) {
        return std::optional<BoundRel>();
      }
      for (const SelectItem& item : branch->items) {
        if (item.star || item.expr->kind != SqlExprKind::kIdent ||
            !item.expr->qualifier.empty() ||
            ParseCanonicalAlias(item.alias) < 0) {
          return std::optional<BoundRel>();
        }
      }
    }
    const SelectCore& lhs = *query.branches[0];
    const SelectCore& rhs = *query.branches[1];
    if (lhs.items.size() != rhs.items.size()) return std::optional<BoundRel>();
    QTF_ASSIGN_OR_RETURN(BoundRel left, BindQueryExpr(*lhs.from->derived));
    QTF_ASSIGN_OR_RETURN(BoundRel right, BindQueryExpr(*rhs.from->derived));
    auto check_branch = [](const SelectCore& core, const BoundRel& child) {
      if (core.items.size() != child.columns.size()) {
        return BindError(core.pos,
                         "UNION ALL branch must list every column of its "
                         "input exactly once");
      }
      for (size_t i = 0; i < core.items.size(); ++i) {
        if (core.items[i].expr->name != child.columns[i].name) {
          return BindError(core.items[i].expr->pos,
                           "UNION ALL branch items must reference the "
                           "input's columns in order");
        }
      }
      return Status::OK();
    };
    QTF_RETURN_IF_ERROR(check_branch(lhs, left));
    QTF_RETURN_IF_ERROR(check_branch(rhs, right));
    Scope out;
    std::vector<ColumnId> out_ids;
    for (size_t i = 0; i < lhs.items.size(); ++i) {
      if (lhs.items[i].alias != rhs.items[i].alias) {
        return BindError(rhs.items[i].pos,
                         "UNION ALL branches disagree on the output alias "
                         "at position " + std::to_string(i + 1));
      }
      if (left.columns[i].type != right.columns[i].type) {
        return BindError(rhs.items[i].pos,
                         "UNION ALL branches have mismatched types at "
                         "position " + std::to_string(i + 1));
      }
      QTF_ASSIGN_OR_RETURN(
          const ColumnId id,
          DefineColumn(lhs.items[i].alias, lhs.items[i].alias,
                       left.columns[i].type, lhs.items[i].pos));
      out_ids.push_back(id);
      out.push_back({"", lhs.items[i].alias, id, left.columns[i].type});
    }
    BoundRel rel;
    rel.op = std::make_shared<UnionAllOp>(left.op, right.op,
                                          std::move(out_ids));
    rel.columns = std::move(out);
    return std::optional<BoundRel>(std::move(rel));
  }

  Result<BoundRel> BindTableRef(const TableRef& ref) {
    switch (ref.kind) {
      case TableRefKind::kBaseTable:
        return BindBaseTable(ref);
      case TableRefKind::kDerived: {
        QTF_ASSIGN_OR_RETURN(BoundRel rel, BindQueryExpr(*ref.derived));
        for (ScopeColumn& col : rel.columns) col.qualifier = ref.alias;
        return rel;
      }
      case TableRefKind::kJoin: {
        QTF_ASSIGN_OR_RETURN(BoundRel left, BindTableRef(*ref.left));
        QTF_ASSIGN_OR_RETURN(BoundRel right, BindTableRef(*ref.right));
        Scope combined = left.columns;
        combined.insert(combined.end(), right.columns.begin(),
                        right.columns.end());
        ExprPtr predicate;
        if (ref.on != nullptr && !IsTautology(*ref.on)) {
          if (ContainsExists(*ref.on)) {
            return BindError(ref.on->pos,
                             "EXISTS is not supported in a join condition");
          }
          QTF_ASSIGN_OR_RETURN(predicate, BindExpr(*ref.on, combined));
          if (predicate->type() != ValueType::kBool) {
            return BindError(ref.on->pos, "join condition must be boolean");
          }
        }
        BoundRel rel;
        rel.op = std::make_shared<JoinOp>(ref.join_kind, left.op, right.op,
                                          std::move(predicate));
        rel.columns = std::move(combined);
        return rel;
      }
    }
    return BindError(ref.pos, "unsupported table reference");
  }

  Result<BoundRel> BindBaseTable(const TableRef& ref) {
    auto lookup = catalog_.GetTable(ref.table_name);
    if (!lookup.ok()) lookup = catalog_.GetTable(ToLower(ref.table_name));
    if (!lookup.ok()) {
      return BindError(ref.pos, "unknown table '" + ref.table_name + "'");
    }
    const std::shared_ptr<const TableDef>& table = lookup.value();
    const std::string qualifier =
        ref.alias.empty() ? table->name() : ref.alias;
    std::vector<ColumnId> ids;
    Scope columns;
    for (const ColumnDef& col : table->columns()) {
      const ColumnId id = registry_->Allocate(col.name, col.type);
      defined_.insert(id);
      ids.push_back(id);
      columns.push_back({qualifier, col.name, id, col.type});
    }
    BoundRel rel;
    rel.op = std::make_shared<GetOp>(table, std::move(ids));
    rel.columns = std::move(columns);
    return rel;
  }

  /// The renderer prints Get as `SELECT <col> AS c<id>, ... FROM <table>`
  /// — every table column in catalog order, each with a canonical alias.
  /// Rebind that exact shape to a GetOp with the original pinned ids.
  /// Returns nullopt (no side effects) when the shape does not match.
  Result<std::optional<BoundRel>> TryBindCanonicalGet(const SelectCore& core) {
    if (core.distinct || core.where != nullptr || !core.group_by.empty() ||
        core.from == nullptr || core.from->kind != TableRefKind::kBaseTable ||
        !core.from->alias.empty()) {
      return std::optional<BoundRel>();
    }
    auto lookup = catalog_.GetTable(core.from->table_name);
    if (!lookup.ok()) {
      lookup = catalog_.GetTable(ToLower(core.from->table_name));
    }
    if (!lookup.ok()) return std::optional<BoundRel>();
    const std::shared_ptr<const TableDef>& table = lookup.value();
    if (core.items.size() != table->columns().size()) {
      return std::optional<BoundRel>();
    }
    for (size_t i = 0; i < core.items.size(); ++i) {
      const SelectItem& item = core.items[i];
      if (item.star || item.expr->kind != SqlExprKind::kIdent ||
          !item.expr->qualifier.empty() ||
          item.expr->name != table->columns()[i].name ||
          ParseCanonicalAlias(item.alias) < 0) {
        return std::optional<BoundRel>();
      }
    }
    std::vector<ColumnId> ids;
    Scope columns;
    for (size_t i = 0; i < core.items.size(); ++i) {
      const ColumnDef& col = table->columns()[i];
      QTF_ASSIGN_OR_RETURN(
          const ColumnId id,
          DefineColumn(core.items[i].alias, col.name, col.type,
                       core.items[i].pos));
      ids.push_back(id);
      columns.push_back({"", core.items[i].alias, id, col.type});
    }
    BoundRel rel;
    rel.op = std::make_shared<GetOp>(table, std::move(ids));
    rel.columns = std::move(columns);
    return std::optional<BoundRel>(std::move(rel));
  }

  Result<BoundRel> BindSelectCore(const SelectCore& core) {
    QTF_ASSIGN_OR_RETURN(std::optional<BoundRel> canonical_get,
                         TryBindCanonicalGet(core));
    if (canonical_get.has_value()) return *std::move(canonical_get);
    if (core.from == nullptr) {
      return BindError(core.pos,
                       "queries without a FROM clause are not supported");
    }
    QTF_ASSIGN_OR_RETURN(BoundRel rel, BindTableRef(*core.from));
    if (core.where != nullptr) {
      QTF_ASSIGN_OR_RETURN(rel, ApplyWhere(*core.where, std::move(rel)));
    }
    const bool has_aggregate =
        !core.group_by.empty() ||
        std::any_of(core.items.begin(), core.items.end(),
                    [](const SelectItem& item) {
                      return item.expr != nullptr &&
                             item.expr->kind == SqlExprKind::kFuncCall;
                    });
    if (has_aggregate) {
      QTF_ASSIGN_OR_RETURN(rel, BindAggregate(core, std::move(rel)));
    } else if (core.items.size() == 1 && core.items[0].star) {
      // `SELECT *` passes the input through without a Project node, which
      // is exactly how the renderer prints Select/Join/Distinct levels.
    } else {
      QTF_ASSIGN_OR_RETURN(rel, BindProjectItems(core, std::move(rel)));
    }
    if (core.distinct) {
      BoundRel wrapped;
      wrapped.op = std::make_shared<DistinctOp>(rel.op);
      wrapped.columns = std::move(rel.columns);
      rel = std::move(wrapped);
    }
    return rel;
  }

  /// WHERE handling. Top-level [NOT] EXISTS conjuncts become left-semi /
  /// left-anti joins (in conjunct order); everything else folds into one
  /// SelectOp predicate. EXISTS anywhere deeper is rejected.
  Result<BoundRel> ApplyWhere(const SqlExpr& where, BoundRel rel) {
    if (!ContainsExists(where)) {
      QTF_ASSIGN_OR_RETURN(ExprPtr predicate, BindExpr(where, rel.columns));
      if (predicate->type() != ValueType::kBool) {
        return BindError(where.pos, "WHERE condition must be boolean");
      }
      BoundRel out;
      out.op = std::make_shared<SelectOp>(rel.op, std::move(predicate));
      out.columns = std::move(rel.columns);
      return out;
    }
    std::vector<const SqlExpr*> conjuncts;
    FlattenConjuncts(where, &conjuncts);
    ExprPtr residual;
    for (const SqlExpr* conjunct : conjuncts) {
      if (conjunct->kind == SqlExprKind::kExists) {
        QTF_ASSIGN_OR_RETURN(rel, ApplyExists(*conjunct, std::move(rel)));
        continue;
      }
      if (ContainsExists(*conjunct)) {
        return BindError(conjunct->pos,
                         "EXISTS is only supported as a top-level WHERE "
                         "conjunct");
      }
      QTF_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(*conjunct, rel.columns));
      if (bound->type() != ValueType::kBool) {
        return BindError(conjunct->pos, "WHERE condition must be boolean");
      }
      residual = residual == nullptr
                     ? std::move(bound)
                     : And(std::move(residual), std::move(bound));
    }
    if (residual != nullptr) {
      BoundRel out;
      out.op = std::make_shared<SelectOp>(rel.op, std::move(residual));
      out.columns = std::move(rel.columns);
      return out;
    }
    return rel;
  }

  /// `[NOT] EXISTS (SELECT <ignored> FROM R [WHERE p])` over the current
  /// input becomes JoinOp(left-semi|left-anti, input, R, p). The
  /// correlation predicate p may reference both the outer and the inner
  /// columns; `(1 = 1)` (or no WHERE) means no predicate.
  Result<BoundRel> ApplyExists(const SqlExpr& exists, BoundRel rel) {
    const QueryExpr& sub = *exists.subquery;
    if (sub.branches.size() != 1) {
      return BindError(exists.pos,
                       "EXISTS subquery cannot contain UNION ALL");
    }
    const SelectCore& core = *sub.branches[0];
    if (core.distinct || !core.group_by.empty()) {
      return BindError(exists.pos,
                       "EXISTS subquery must be a plain SELECT ... FROM ... "
                       "[WHERE ...]");
    }
    if (core.from == nullptr) {
      return BindError(core.pos, "EXISTS subquery requires a FROM clause");
    }
    QTF_ASSIGN_OR_RETURN(BoundRel inner, BindTableRef(*core.from));
    Scope combined = rel.columns;
    combined.insert(combined.end(), inner.columns.begin(),
                    inner.columns.end());
    // The select list of an EXISTS subquery has no effect; accept literals,
    // '*', or column references (resolved so typos still surface).
    for (const SelectItem& item : core.items) {
      if (item.star) continue;
      const SqlExpr& e = *item.expr;
      if (e.kind == SqlExprKind::kIdent) {
        QTF_RETURN_IF_ERROR(Resolve(e, combined).status());
        continue;
      }
      if (e.kind == SqlExprKind::kIntLit ||
          e.kind == SqlExprKind::kDoubleLit ||
          e.kind == SqlExprKind::kStringLit ||
          e.kind == SqlExprKind::kBoolLit) {
        continue;
      }
      return BindError(item.pos,
                       "EXISTS select list supports only literals, columns "
                       "or '*'");
    }
    ExprPtr predicate;
    if (core.where != nullptr && !IsTautology(*core.where)) {
      if (ContainsExists(*core.where)) {
        return BindError(core.where->pos,
                         "nested EXISTS inside an EXISTS subquery is not "
                         "supported");
      }
      QTF_ASSIGN_OR_RETURN(predicate, BindExpr(*core.where, combined));
      if (predicate->type() != ValueType::kBool) {
        return BindError(core.where->pos,
                         "EXISTS condition must be boolean");
      }
    }
    BoundRel out;
    out.op = std::make_shared<JoinOp>(
        exists.negated ? JoinKind::kLeftAnti : JoinKind::kLeftSemi, rel.op,
        inner.op, std::move(predicate));
    out.columns = std::move(rel.columns);  // semi/anti keep the left side
    return out;
  }

  Result<BoundRel> BindProjectItems(const SelectCore& core, BoundRel rel) {
    std::vector<ProjectItem> items;
    Scope out;
    for (const SelectItem& item : core.items) {
      if (item.star) {
        return BindError(item.pos,
                         "'*' must be the entire select list");
      }
      const SqlExpr& e = *item.expr;
      if (e.kind == SqlExprKind::kIdent) {
        // Pass-through: keeps the referenced column's identity. A canonical
        // alias must agree with that identity; other aliases just rename.
        QTF_ASSIGN_OR_RETURN(const ScopeColumn* col, Resolve(e, rel.columns));
        const ColumnId pinned = ParseCanonicalAlias(item.alias);
        if (pinned >= 0 && pinned != col->id) {
          return BindError(item.pos,
                           "canonical alias '" + item.alias +
                               "' does not match the referenced column's "
                               "identity (c" + std::to_string(col->id) + ")");
        }
        items.push_back({Col(col->id, col->type), col->id});
        out.push_back({"", item.alias.empty() ? e.name : item.alias, col->id,
                       col->type});
        continue;
      }
      QTF_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(e, rel.columns));
      const std::string name = item.alias.empty() ? "expr" : item.alias;
      QTF_ASSIGN_OR_RETURN(const ColumnId id,
                           DefineColumn(item.alias, name, bound->type(),
                                        item.pos));
      out.push_back({"", name, id, bound->type()});
      items.push_back({std::move(bound), id});
    }
    BoundRel result;
    result.op = std::make_shared<ProjectOp>(rel.op, std::move(items));
    result.columns = std::move(out);
    return result;
  }

  Result<AggregateCall> BindAggregateCall(const SqlExpr& e,
                                          const Scope& scope) {
    const std::string upper = ToUpper(e.name);
    AggregateCall call;
    if (e.star_arg) {
      if (upper != "COUNT") {
        return BindError(e.pos, "'*' argument is only valid for COUNT");
      }
      call.kind = AggKind::kCountStar;
      return call;
    }
    if (e.children.size() != 1) {
      return BindError(e.pos,
                       "aggregate " + upper + " takes exactly one argument");
    }
    if (upper == "COUNT") {
      call.kind = AggKind::kCount;
    } else if (upper == "SUM") {
      call.kind = AggKind::kSum;
    } else if (upper == "MIN") {
      call.kind = AggKind::kMin;
    } else if (upper == "MAX") {
      call.kind = AggKind::kMax;
    } else if (upper == "AVG") {
      call.kind = AggKind::kAvg;
    } else {
      return BindError(e.pos, "unknown function '" + e.name +
                                  "' (supported: COUNT, SUM, MIN, MAX, AVG)");
    }
    QTF_ASSIGN_OR_RETURN(ExprPtr arg, BindExpr(*e.children[0], scope));
    if ((call.kind == AggKind::kSum || call.kind == AggKind::kAvg) &&
        !IsNumeric(arg->type())) {
      return BindError(e.pos, upper + " requires a numeric argument");
    }
    call.arg = std::move(arg);
    return call;
  }

  Result<BoundRel> BindAggregate(const SelectCore& core, BoundRel rel) {
    // Grouping columns, in GROUP BY order.
    std::vector<ColumnId> group_cols;
    for (const SqlExprPtr& g : core.group_by) {
      if (g->kind != SqlExprKind::kIdent) {
        return BindError(g->pos, "GROUP BY supports column references only");
      }
      QTF_ASSIGN_OR_RETURN(const ScopeColumn* col, Resolve(*g, rel.columns));
      if (std::find(group_cols.begin(), group_cols.end(), col->id) !=
          group_cols.end()) {
        return BindError(g->pos, "duplicate GROUP BY column '" + g->name +
                                     "'");
      }
      group_cols.push_back(col->id);
    }
    std::vector<AggregateItem> aggregates;
    Scope out;
    for (const SelectItem& item : core.items) {
      if (item.star) {
        return BindError(item.pos,
                         "'*' cannot be used in a grouped select list");
      }
      const SqlExpr& e = *item.expr;
      if (e.kind == SqlExprKind::kIdent) {
        QTF_ASSIGN_OR_RETURN(const ScopeColumn* col, Resolve(e, rel.columns));
        if (std::find(group_cols.begin(), group_cols.end(), col->id) ==
            group_cols.end()) {
          return BindError(e.pos, "column '" + e.name +
                                      "' must appear in GROUP BY");
        }
        const ColumnId pinned = ParseCanonicalAlias(item.alias);
        if (pinned >= 0 && pinned != col->id) {
          return BindError(item.pos,
                           "canonical alias '" + item.alias +
                               "' does not match the referenced column's "
                               "identity (c" + std::to_string(col->id) + ")");
        }
        out.push_back({"", item.alias.empty() ? e.name : item.alias, col->id,
                       col->type});
        continue;
      }
      if (e.kind != SqlExprKind::kFuncCall) {
        return BindError(e.pos,
                         "grouped select items must be grouping columns or "
                         "aggregate calls");
      }
      QTF_ASSIGN_OR_RETURN(AggregateCall call,
                           BindAggregateCall(e, rel.columns));
      const ValueType type = call.ResultType();
      const std::string name = item.alias.empty() ? "agg" : item.alias;
      QTF_ASSIGN_OR_RETURN(const ColumnId id,
                           DefineColumn(item.alias, name, type, item.pos));
      aggregates.push_back({std::move(call), id});
      out.push_back({"", name, id, type});
    }
    BoundRel result;
    result.op = std::make_shared<GroupByAggOp>(rel.op, group_cols,
                                               std::move(aggregates));
    // The operator outputs grouping columns then aggregates. If the select
    // list uses a different order (or narrows the grouping columns), add a
    // pass-through Project to honor it. The canonical renderer's order
    // matches the operator's, so round trips never take this branch.
    std::vector<ColumnId> op_order = result.op->OutputColumns();
    std::vector<ColumnId> select_order;
    select_order.reserve(out.size());
    for (const ScopeColumn& col : out) select_order.push_back(col.id);
    if (select_order != op_order) {
      std::vector<ProjectItem> proj;
      proj.reserve(out.size());
      for (const ScopeColumn& col : out) {
        proj.push_back({Col(col.id, col.type), col.id});
      }
      result.op = std::make_shared<ProjectOp>(result.op, std::move(proj));
    }
    result.columns = std::move(out);
    return result;
  }

  const Catalog& catalog_;
  ColumnRegistryPtr registry_;
  /// Ids already assigned (via canonical pinning or plain allocation);
  /// guards against a `c<N>` alias colliding with an existing column.
  std::set<ColumnId> defined_;
};

}  // namespace

Result<Query> BindSql(const QueryExpr& query, const Catalog& catalog,
                      const BinderOptions& options) {
  Binder binder(catalog);
  QTF_ASSIGN_OR_RETURN(Query bound, binder.Bind(query));
  if (options.interner != nullptr) {
    bound.root = options.interner->Intern(bound.root);
  }
  return bound;
}

}  // namespace sql
}  // namespace qtf
