# Empty dependencies file for bench_fig10_pair_generation_time.
# This may be replaced when dependencies are built.
