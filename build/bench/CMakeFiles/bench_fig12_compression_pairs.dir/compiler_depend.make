# Empty compiler generated dependencies file for bench_fig12_compression_pairs.
# This may be replaced when dependencies are built.
