file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_compression_pairs.dir/bench_fig12_compression_pairs.cc.o"
  "CMakeFiles/bench_fig12_compression_pairs.dir/bench_fig12_compression_pairs.cc.o.d"
  "bench_fig12_compression_pairs"
  "bench_fig12_compression_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_compression_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
