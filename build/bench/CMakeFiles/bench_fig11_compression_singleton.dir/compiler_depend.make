# Empty compiler generated dependencies file for bench_fig11_compression_singleton.
# This may be replaced when dependencies are built.
