file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_monotonicity.dir/bench_fig14_monotonicity.cc.o"
  "CMakeFiles/bench_fig14_monotonicity.dir/bench_fig14_monotonicity.cc.o.d"
  "bench_fig14_monotonicity"
  "bench_fig14_monotonicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_monotonicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
