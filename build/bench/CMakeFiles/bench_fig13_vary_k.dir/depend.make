# Empty dependencies file for bench_fig13_vary_k.
# This may be replaced when dependencies are built.
