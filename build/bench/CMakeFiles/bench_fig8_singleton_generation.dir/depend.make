# Empty dependencies file for bench_fig8_singleton_generation.
# This may be replaced when dependencies are built.
