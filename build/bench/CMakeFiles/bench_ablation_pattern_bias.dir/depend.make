# Empty dependencies file for bench_ablation_pattern_bias.
# This may be replaced when dependencies are built.
