# Empty compiler generated dependencies file for bench_fig9_pair_generation.
# This may be replaced when dependencies are built.
