# Empty dependencies file for test_rules_correctness.
# This may be replaced when dependencies are built.
