file(REMOVE_RECURSE
  "CMakeFiles/test_rules_correctness.dir/test_rules_correctness.cc.o"
  "CMakeFiles/test_rules_correctness.dir/test_rules_correctness.cc.o.d"
  "test_rules_correctness"
  "test_rules_correctness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rules_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
