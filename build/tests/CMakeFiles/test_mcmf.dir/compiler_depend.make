# Empty compiler generated dependencies file for test_mcmf.
# This may be replaced when dependencies are built.
