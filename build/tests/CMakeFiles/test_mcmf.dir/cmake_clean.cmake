file(REMOVE_RECURSE
  "CMakeFiles/test_mcmf.dir/test_mcmf.cc.o"
  "CMakeFiles/test_mcmf.dir/test_mcmf.cc.o.d"
  "test_mcmf"
  "test_mcmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
