file(REMOVE_RECURSE
  "CMakeFiles/test_catalog_storage.dir/test_catalog_storage.cc.o"
  "CMakeFiles/test_catalog_storage.dir/test_catalog_storage.cc.o.d"
  "test_catalog_storage"
  "test_catalog_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_catalog_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
