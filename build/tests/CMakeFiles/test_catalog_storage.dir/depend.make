# Empty dependencies file for test_catalog_storage.
# This may be replaced when dependencies are built.
