file(REMOVE_RECURSE
  "CMakeFiles/test_logical_props.dir/test_logical_props.cc.o"
  "CMakeFiles/test_logical_props.dir/test_logical_props.cc.o.d"
  "test_logical_props"
  "test_logical_props.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logical_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
