# Empty compiler generated dependencies file for test_logical_props.
# This may be replaced when dependencies are built.
