file(REMOVE_RECURSE
  "CMakeFiles/test_sqlgen.dir/test_sqlgen.cc.o"
  "CMakeFiles/test_sqlgen.dir/test_sqlgen.cc.o.d"
  "test_sqlgen"
  "test_sqlgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sqlgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
