# Empty dependencies file for test_sqlgen.
# This may be replaced when dependencies are built.
