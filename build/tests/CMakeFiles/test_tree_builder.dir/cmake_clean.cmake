file(REMOVE_RECURSE
  "CMakeFiles/test_tree_builder.dir/test_tree_builder.cc.o"
  "CMakeFiles/test_tree_builder.dir/test_tree_builder.cc.o.d"
  "test_tree_builder"
  "test_tree_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
