# Empty dependencies file for test_tree_builder.
# This may be replaced when dependencies are built.
