file(REMOVE_RECURSE
  "CMakeFiles/test_memo.dir/test_memo.cc.o"
  "CMakeFiles/test_memo.dir/test_memo.cc.o.d"
  "test_memo"
  "test_memo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
