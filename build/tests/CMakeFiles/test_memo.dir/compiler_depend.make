# Empty compiler generated dependencies file for test_memo.
# This may be replaced when dependencies are built.
