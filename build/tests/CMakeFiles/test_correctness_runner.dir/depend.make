# Empty dependencies file for test_correctness_runner.
# This may be replaced when dependencies are built.
