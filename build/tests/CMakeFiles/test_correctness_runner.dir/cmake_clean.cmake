file(REMOVE_RECURSE
  "CMakeFiles/test_correctness_runner.dir/test_correctness_runner.cc.o"
  "CMakeFiles/test_correctness_runner.dir/test_correctness_runner.cc.o.d"
  "test_correctness_runner"
  "test_correctness_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_correctness_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
