file(REMOVE_RECURSE
  "CMakeFiles/test_physical.dir/test_physical.cc.o"
  "CMakeFiles/test_physical.dir/test_physical.cc.o.d"
  "test_physical"
  "test_physical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_physical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
