# Empty dependencies file for test_impl_rules.
# This may be replaced when dependencies are built.
