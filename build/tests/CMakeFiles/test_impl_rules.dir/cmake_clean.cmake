file(REMOVE_RECURSE
  "CMakeFiles/test_impl_rules.dir/test_impl_rules.cc.o"
  "CMakeFiles/test_impl_rules.dir/test_impl_rules.cc.o.d"
  "test_impl_rules"
  "test_impl_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_impl_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
