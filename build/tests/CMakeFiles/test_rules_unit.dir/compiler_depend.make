# Empty compiler generated dependencies file for test_rules_unit.
# This may be replaced when dependencies are built.
