file(REMOVE_RECURSE
  "CMakeFiles/test_rules_unit.dir/test_rules_unit.cc.o"
  "CMakeFiles/test_rules_unit.dir/test_rules_unit.cc.o.d"
  "test_rules_unit"
  "test_rules_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rules_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
