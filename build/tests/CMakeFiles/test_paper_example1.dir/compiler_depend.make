# Empty compiler generated dependencies file for test_paper_example1.
# This may be replaced when dependencies are built.
