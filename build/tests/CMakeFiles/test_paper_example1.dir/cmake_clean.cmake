file(REMOVE_RECURSE
  "CMakeFiles/test_paper_example1.dir/test_paper_example1.cc.o"
  "CMakeFiles/test_paper_example1.dir/test_paper_example1.cc.o.d"
  "test_paper_example1"
  "test_paper_example1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_example1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
