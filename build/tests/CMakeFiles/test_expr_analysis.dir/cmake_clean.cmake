file(REMOVE_RECURSE
  "CMakeFiles/test_expr_analysis.dir/test_expr_analysis.cc.o"
  "CMakeFiles/test_expr_analysis.dir/test_expr_analysis.cc.o.d"
  "test_expr_analysis"
  "test_expr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
