# Empty dependencies file for test_paper_section3.
# This may be replaced when dependencies are built.
