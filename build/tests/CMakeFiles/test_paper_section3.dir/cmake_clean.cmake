file(REMOVE_RECURSE
  "CMakeFiles/test_paper_section3.dir/test_paper_section3.cc.o"
  "CMakeFiles/test_paper_section3.dir/test_paper_section3.cc.o.d"
  "test_paper_section3"
  "test_paper_section3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_section3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
