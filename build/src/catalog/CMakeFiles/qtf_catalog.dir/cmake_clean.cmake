file(REMOVE_RECURSE
  "CMakeFiles/qtf_catalog.dir/catalog.cc.o"
  "CMakeFiles/qtf_catalog.dir/catalog.cc.o.d"
  "libqtf_catalog.a"
  "libqtf_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtf_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
