# Empty dependencies file for qtf_catalog.
# This may be replaced when dependencies are built.
