file(REMOVE_RECURSE
  "libqtf_catalog.a"
)
