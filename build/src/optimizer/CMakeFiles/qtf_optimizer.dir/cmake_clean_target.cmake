file(REMOVE_RECURSE
  "libqtf_optimizer.a"
)
