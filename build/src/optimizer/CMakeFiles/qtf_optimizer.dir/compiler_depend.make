# Empty compiler generated dependencies file for qtf_optimizer.
# This may be replaced when dependencies are built.
