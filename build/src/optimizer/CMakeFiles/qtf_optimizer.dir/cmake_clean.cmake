file(REMOVE_RECURSE
  "CMakeFiles/qtf_optimizer.dir/cost_model.cc.o"
  "CMakeFiles/qtf_optimizer.dir/cost_model.cc.o.d"
  "CMakeFiles/qtf_optimizer.dir/memo.cc.o"
  "CMakeFiles/qtf_optimizer.dir/memo.cc.o.d"
  "CMakeFiles/qtf_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/qtf_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/qtf_optimizer.dir/rule.cc.o"
  "CMakeFiles/qtf_optimizer.dir/rule.cc.o.d"
  "libqtf_optimizer.a"
  "libqtf_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtf_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
