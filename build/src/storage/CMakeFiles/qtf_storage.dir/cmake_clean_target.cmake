file(REMOVE_RECURSE
  "libqtf_storage.a"
)
