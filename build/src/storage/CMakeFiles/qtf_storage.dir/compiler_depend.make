# Empty compiler generated dependencies file for qtf_storage.
# This may be replaced when dependencies are built.
