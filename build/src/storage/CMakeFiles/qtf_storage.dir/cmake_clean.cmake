file(REMOVE_RECURSE
  "CMakeFiles/qtf_storage.dir/database.cc.o"
  "CMakeFiles/qtf_storage.dir/database.cc.o.d"
  "CMakeFiles/qtf_storage.dir/tpch.cc.o"
  "CMakeFiles/qtf_storage.dir/tpch.cc.o.d"
  "libqtf_storage.a"
  "libqtf_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtf_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
