# Empty compiler generated dependencies file for qtf_pattern.
# This may be replaced when dependencies are built.
