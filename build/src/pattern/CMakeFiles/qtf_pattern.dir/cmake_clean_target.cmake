file(REMOVE_RECURSE
  "libqtf_pattern.a"
)
