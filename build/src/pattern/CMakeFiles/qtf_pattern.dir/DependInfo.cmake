
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pattern/pattern.cc" "src/pattern/CMakeFiles/qtf_pattern.dir/pattern.cc.o" "gcc" "src/pattern/CMakeFiles/qtf_pattern.dir/pattern.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logical/CMakeFiles/qtf_logical.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/qtf_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/qtf_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/qtf_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qtf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
