file(REMOVE_RECURSE
  "CMakeFiles/qtf_pattern.dir/pattern.cc.o"
  "CMakeFiles/qtf_pattern.dir/pattern.cc.o.d"
  "libqtf_pattern.a"
  "libqtf_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtf_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
