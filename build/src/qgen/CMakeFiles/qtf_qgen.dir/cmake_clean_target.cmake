file(REMOVE_RECURSE
  "libqtf_qgen.a"
)
