# Empty compiler generated dependencies file for qtf_qgen.
# This may be replaced when dependencies are built.
