file(REMOVE_RECURSE
  "CMakeFiles/qtf_qgen.dir/generation.cc.o"
  "CMakeFiles/qtf_qgen.dir/generation.cc.o.d"
  "CMakeFiles/qtf_qgen.dir/generators.cc.o"
  "CMakeFiles/qtf_qgen.dir/generators.cc.o.d"
  "CMakeFiles/qtf_qgen.dir/sqlgen.cc.o"
  "CMakeFiles/qtf_qgen.dir/sqlgen.cc.o.d"
  "CMakeFiles/qtf_qgen.dir/test_suite.cc.o"
  "CMakeFiles/qtf_qgen.dir/test_suite.cc.o.d"
  "CMakeFiles/qtf_qgen.dir/tree_builder.cc.o"
  "CMakeFiles/qtf_qgen.dir/tree_builder.cc.o.d"
  "libqtf_qgen.a"
  "libqtf_qgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtf_qgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
