# Empty dependencies file for qtf_testing.
# This may be replaced when dependencies are built.
