file(REMOVE_RECURSE
  "libqtf_testing.a"
)
