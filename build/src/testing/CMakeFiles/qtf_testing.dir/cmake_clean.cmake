file(REMOVE_RECURSE
  "CMakeFiles/qtf_testing.dir/correctness.cc.o"
  "CMakeFiles/qtf_testing.dir/correctness.cc.o.d"
  "CMakeFiles/qtf_testing.dir/framework.cc.o"
  "CMakeFiles/qtf_testing.dir/framework.cc.o.d"
  "libqtf_testing.a"
  "libqtf_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtf_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
