
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/agg_rules.cc" "src/rules/CMakeFiles/qtf_rules.dir/agg_rules.cc.o" "gcc" "src/rules/CMakeFiles/qtf_rules.dir/agg_rules.cc.o.d"
  "/root/repo/src/rules/buggy_rules.cc" "src/rules/CMakeFiles/qtf_rules.dir/buggy_rules.cc.o" "gcc" "src/rules/CMakeFiles/qtf_rules.dir/buggy_rules.cc.o.d"
  "/root/repo/src/rules/default_rules.cc" "src/rules/CMakeFiles/qtf_rules.dir/default_rules.cc.o" "gcc" "src/rules/CMakeFiles/qtf_rules.dir/default_rules.cc.o.d"
  "/root/repo/src/rules/implementation_rules.cc" "src/rules/CMakeFiles/qtf_rules.dir/implementation_rules.cc.o" "gcc" "src/rules/CMakeFiles/qtf_rules.dir/implementation_rules.cc.o.d"
  "/root/repo/src/rules/join_rules.cc" "src/rules/CMakeFiles/qtf_rules.dir/join_rules.cc.o" "gcc" "src/rules/CMakeFiles/qtf_rules.dir/join_rules.cc.o.d"
  "/root/repo/src/rules/rule_util.cc" "src/rules/CMakeFiles/qtf_rules.dir/rule_util.cc.o" "gcc" "src/rules/CMakeFiles/qtf_rules.dir/rule_util.cc.o.d"
  "/root/repo/src/rules/select_rules.cc" "src/rules/CMakeFiles/qtf_rules.dir/select_rules.cc.o" "gcc" "src/rules/CMakeFiles/qtf_rules.dir/select_rules.cc.o.d"
  "/root/repo/src/rules/semijoin_rules.cc" "src/rules/CMakeFiles/qtf_rules.dir/semijoin_rules.cc.o" "gcc" "src/rules/CMakeFiles/qtf_rules.dir/semijoin_rules.cc.o.d"
  "/root/repo/src/rules/union_rules.cc" "src/rules/CMakeFiles/qtf_rules.dir/union_rules.cc.o" "gcc" "src/rules/CMakeFiles/qtf_rules.dir/union_rules.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/optimizer/CMakeFiles/qtf_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/qtf_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/qtf_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/logical/CMakeFiles/qtf_logical.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/qtf_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/qtf_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/qtf_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/qtf_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qtf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
