file(REMOVE_RECURSE
  "CMakeFiles/qtf_rules.dir/agg_rules.cc.o"
  "CMakeFiles/qtf_rules.dir/agg_rules.cc.o.d"
  "CMakeFiles/qtf_rules.dir/buggy_rules.cc.o"
  "CMakeFiles/qtf_rules.dir/buggy_rules.cc.o.d"
  "CMakeFiles/qtf_rules.dir/default_rules.cc.o"
  "CMakeFiles/qtf_rules.dir/default_rules.cc.o.d"
  "CMakeFiles/qtf_rules.dir/implementation_rules.cc.o"
  "CMakeFiles/qtf_rules.dir/implementation_rules.cc.o.d"
  "CMakeFiles/qtf_rules.dir/join_rules.cc.o"
  "CMakeFiles/qtf_rules.dir/join_rules.cc.o.d"
  "CMakeFiles/qtf_rules.dir/rule_util.cc.o"
  "CMakeFiles/qtf_rules.dir/rule_util.cc.o.d"
  "CMakeFiles/qtf_rules.dir/select_rules.cc.o"
  "CMakeFiles/qtf_rules.dir/select_rules.cc.o.d"
  "CMakeFiles/qtf_rules.dir/semijoin_rules.cc.o"
  "CMakeFiles/qtf_rules.dir/semijoin_rules.cc.o.d"
  "CMakeFiles/qtf_rules.dir/union_rules.cc.o"
  "CMakeFiles/qtf_rules.dir/union_rules.cc.o.d"
  "libqtf_rules.a"
  "libqtf_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtf_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
