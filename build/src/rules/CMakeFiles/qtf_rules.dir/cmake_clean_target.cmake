file(REMOVE_RECURSE
  "libqtf_rules.a"
)
