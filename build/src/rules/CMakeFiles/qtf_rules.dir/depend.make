# Empty dependencies file for qtf_rules.
# This may be replaced when dependencies are built.
