# Empty dependencies file for qtf_common.
# This may be replaced when dependencies are built.
