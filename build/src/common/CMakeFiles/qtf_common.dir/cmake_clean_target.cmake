file(REMOVE_RECURSE
  "libqtf_common.a"
)
