file(REMOVE_RECURSE
  "CMakeFiles/qtf_common.dir/status.cc.o"
  "CMakeFiles/qtf_common.dir/status.cc.o.d"
  "CMakeFiles/qtf_common.dir/str_util.cc.o"
  "CMakeFiles/qtf_common.dir/str_util.cc.o.d"
  "libqtf_common.a"
  "libqtf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
