file(REMOVE_RECURSE
  "libqtf_exec.a"
)
