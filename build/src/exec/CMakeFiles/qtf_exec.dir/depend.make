# Empty dependencies file for qtf_exec.
# This may be replaced when dependencies are built.
