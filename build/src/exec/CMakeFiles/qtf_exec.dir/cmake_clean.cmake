file(REMOVE_RECURSE
  "CMakeFiles/qtf_exec.dir/executor.cc.o"
  "CMakeFiles/qtf_exec.dir/executor.cc.o.d"
  "CMakeFiles/qtf_exec.dir/physical.cc.o"
  "CMakeFiles/qtf_exec.dir/physical.cc.o.d"
  "CMakeFiles/qtf_exec.dir/result_set.cc.o"
  "CMakeFiles/qtf_exec.dir/result_set.cc.o.d"
  "libqtf_exec.a"
  "libqtf_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtf_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
