# Empty dependencies file for qtf_compress.
# This may be replaced when dependencies are built.
