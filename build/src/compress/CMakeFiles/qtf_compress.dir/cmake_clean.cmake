file(REMOVE_RECURSE
  "CMakeFiles/qtf_compress.dir/compression.cc.o"
  "CMakeFiles/qtf_compress.dir/compression.cc.o.d"
  "CMakeFiles/qtf_compress.dir/edge_costs.cc.o"
  "CMakeFiles/qtf_compress.dir/edge_costs.cc.o.d"
  "CMakeFiles/qtf_compress.dir/matching.cc.o"
  "CMakeFiles/qtf_compress.dir/matching.cc.o.d"
  "CMakeFiles/qtf_compress.dir/mcmf.cc.o"
  "CMakeFiles/qtf_compress.dir/mcmf.cc.o.d"
  "libqtf_compress.a"
  "libqtf_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtf_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
