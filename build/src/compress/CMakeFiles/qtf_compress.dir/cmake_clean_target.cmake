file(REMOVE_RECURSE
  "libqtf_compress.a"
)
