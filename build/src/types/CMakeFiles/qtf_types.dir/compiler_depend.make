# Empty compiler generated dependencies file for qtf_types.
# This may be replaced when dependencies are built.
