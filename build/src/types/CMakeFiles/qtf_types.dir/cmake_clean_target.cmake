file(REMOVE_RECURSE
  "libqtf_types.a"
)
