file(REMOVE_RECURSE
  "CMakeFiles/qtf_types.dir/value.cc.o"
  "CMakeFiles/qtf_types.dir/value.cc.o.d"
  "libqtf_types.a"
  "libqtf_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtf_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
