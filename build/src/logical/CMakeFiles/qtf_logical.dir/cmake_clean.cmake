file(REMOVE_RECURSE
  "CMakeFiles/qtf_logical.dir/ops.cc.o"
  "CMakeFiles/qtf_logical.dir/ops.cc.o.d"
  "CMakeFiles/qtf_logical.dir/props.cc.o"
  "CMakeFiles/qtf_logical.dir/props.cc.o.d"
  "CMakeFiles/qtf_logical.dir/validate.cc.o"
  "CMakeFiles/qtf_logical.dir/validate.cc.o.d"
  "libqtf_logical.a"
  "libqtf_logical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtf_logical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
