# Empty compiler generated dependencies file for qtf_logical.
# This may be replaced when dependencies are built.
