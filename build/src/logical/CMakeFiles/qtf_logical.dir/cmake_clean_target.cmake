file(REMOVE_RECURSE
  "libqtf_logical.a"
)
