file(REMOVE_RECURSE
  "CMakeFiles/qtf_expr.dir/aggregate.cc.o"
  "CMakeFiles/qtf_expr.dir/aggregate.cc.o.d"
  "CMakeFiles/qtf_expr.dir/analysis.cc.o"
  "CMakeFiles/qtf_expr.dir/analysis.cc.o.d"
  "CMakeFiles/qtf_expr.dir/eval.cc.o"
  "CMakeFiles/qtf_expr.dir/eval.cc.o.d"
  "CMakeFiles/qtf_expr.dir/expr.cc.o"
  "CMakeFiles/qtf_expr.dir/expr.cc.o.d"
  "libqtf_expr.a"
  "libqtf_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtf_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
