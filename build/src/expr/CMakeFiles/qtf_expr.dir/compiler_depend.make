# Empty compiler generated dependencies file for qtf_expr.
# This may be replaced when dependencies are built.
