file(REMOVE_RECURSE
  "libqtf_expr.a"
)
