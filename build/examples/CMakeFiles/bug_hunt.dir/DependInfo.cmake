
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/bug_hunt.cpp" "examples/CMakeFiles/bug_hunt.dir/bug_hunt.cpp.o" "gcc" "examples/CMakeFiles/bug_hunt.dir/bug_hunt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testing/CMakeFiles/qtf_testing.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/qtf_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/qgen/CMakeFiles/qtf_qgen.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/qtf_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/qtf_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/qtf_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/qtf_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/logical/CMakeFiles/qtf_logical.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/qtf_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/qtf_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/qtf_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/qtf_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qtf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
