file(REMOVE_RECURSE
  "CMakeFiles/relevance_report.dir/relevance_report.cpp.o"
  "CMakeFiles/relevance_report.dir/relevance_report.cpp.o.d"
  "relevance_report"
  "relevance_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relevance_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
