# Empty compiler generated dependencies file for rule_coverage_report.
# This may be replaced when dependencies are built.
