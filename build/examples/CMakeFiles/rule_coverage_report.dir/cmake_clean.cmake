file(REMOVE_RECURSE
  "CMakeFiles/rule_coverage_report.dir/rule_coverage_report.cpp.o"
  "CMakeFiles/rule_coverage_report.dir/rule_coverage_report.cpp.o.d"
  "rule_coverage_report"
  "rule_coverage_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_coverage_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
