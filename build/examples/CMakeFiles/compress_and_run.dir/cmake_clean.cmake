file(REMOVE_RECURSE
  "CMakeFiles/compress_and_run.dir/compress_and_run.cpp.o"
  "CMakeFiles/compress_and_run.dir/compress_and_run.cpp.o.d"
  "compress_and_run"
  "compress_and_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_and_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
