# Empty dependencies file for compress_and_run.
# This may be replaced when dependencies are built.
